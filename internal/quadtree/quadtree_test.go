package quadtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

func unitCfg(d int) Config {
	return Config{Region: geom.UnitCube(d), MemoryLimit: 1 << 20}
}

func mustTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	region := geom.UnitCube(2)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no region", Config{}},
		{"too many dims", Config{Region: geom.UnitCube(21)}},
		{"negative depth", Config{Region: region, MaxDepth: -1}},
		{"negative alpha", Config{Region: region, Alpha: -0.1}},
		{"beta zero defaults ok but negative bad", Config{Region: region, Beta: -1}},
		{"gamma over 1", Config{Region: region, Gamma: 1.5}},
		{"gamma negative", Config{Region: region, Gamma: -0.5}},
		{"node bytes negative", Config{Region: region, NodeBytes: -5}},
		{"limit below one node", Config{Region: region, MemoryLimit: 5, NodeBytes: 20}},
		{"bad strategy", Config{Region: region, Strategy: Strategy(7)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Errorf("New(%+v) succeeded, want error", c.cfg)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(2)})
	cfg := tr.Config()
	if cfg.MaxDepth != 6 || cfg.Alpha != 0.05 || cfg.Beta != 1 ||
		cfg.Gamma != 0.001 || cfg.MemoryLimit != 1843 || cfg.NodeBytes != DefaultNodeBytes {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestStrategyString(t *testing.T) {
	if Eager.String() != "MLQ-E" || Lazy.String() != "MLQ-L" {
		t.Error("strategy names must match the paper")
	}
	if !strings.Contains(Strategy(9).String(), "9") {
		t.Error("unknown strategy should render its value")
	}
}

func TestInsertErrors(t *testing.T) {
	tr := mustTree(t, unitCfg(2))
	if err := tr.Insert(geom.Point{0.5}, 1); err == nil {
		t.Error("dimension mismatch not rejected")
	}
	if err := tr.Insert(geom.Point{0.5, 0.5}, math.NaN()); err == nil {
		t.Error("NaN value not rejected")
	}
	if err := tr.Insert(geom.Point{0.5, 0.5}, math.Inf(1)); err == nil {
		t.Error("Inf value not rejected")
	}
}

func TestInsertClampsOutOfRange(t *testing.T) {
	tr := mustTree(t, unitCfg(2))
	if err := tr.Insert(geom.Point{5, -3}, 7); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Predict(geom.Point{0.99, 0.01})
	if !ok || got != 7 {
		t.Errorf("Predict = %g, %v; want 7, true", got, ok)
	}
}

func TestPredictEmptyTree(t *testing.T) {
	tr := mustTree(t, unitCfg(2))
	if _, ok := tr.Predict(geom.Point{0.5, 0.5}); ok {
		t.Error("empty tree must report ok=false")
	}
	if _, _, ok := tr.PredictDepth(geom.Point{0.5, 0.5}, 1); ok {
		t.Error("empty tree must report ok=false")
	}
}

func TestPredictAfterFirstPoint(t *testing.T) {
	// §1: MLQ "can start making predictions immediately after the first
	// data point is inserted".
	tr := mustTree(t, unitCfg(2))
	if err := tr.Insert(geom.Point{0.2, 0.2}, 42); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Predict(geom.Point{0.9, 0.9})
	if !ok || got != 42 {
		t.Errorf("Predict = %g, %v; want 42, true", got, ok)
	}
}

func TestPredictBetaFallsBackToRoot(t *testing.T) {
	tr := mustTree(t, unitCfg(1))
	tr.Insert(geom.Point{0.1}, 10)
	tr.Insert(geom.Point{0.9}, 20)
	got, ok := tr.PredictBeta(geom.Point{0.1}, 100)
	if !ok || got != 15 {
		t.Errorf("PredictBeta(beta=100) = %g, %v; want root avg 15, true", got, ok)
	}
	// beta < 1 is treated as 1.
	got, _ = tr.PredictBeta(geom.Point{0.1}, 0)
	if got != 10 {
		t.Errorf("PredictBeta(beta=0) = %g, want leaf value 10", got)
	}
}

func TestPredictBetaChoosesResolution(t *testing.T) {
	// Two points in the left half, one in the right. With beta=2 a query
	// in the left half gets the left block (count 2); a query in the
	// right half must fall back to the root (count 3).
	tr := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 1, MemoryLimit: 1 << 20})
	tr.Insert(geom.Point{0.1}, 10)
	tr.Insert(geom.Point{0.2}, 20)
	tr.Insert(geom.Point{0.9}, 60)
	if got, _ := tr.PredictBeta(geom.Point{0.1}, 2); got != 15 {
		t.Errorf("left query = %g, want 15", got)
	}
	if got, _ := tr.PredictBeta(geom.Point{0.9}, 2); got != 30 {
		t.Errorf("right query = %g, want root avg 30", got)
	}
	if got, _ := tr.PredictBeta(geom.Point{0.9}, 1); got != 60 {
		t.Errorf("right query beta=1 = %g, want 60", got)
	}
}

func TestPredictDepthReportsDepth(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 3, MemoryLimit: 1 << 20})
	for i := 0; i < 4; i++ {
		tr.Insert(geom.Point{0.05}, 5)
	}
	_, depth, ok := tr.PredictDepth(geom.Point{0.05}, 1)
	if !ok || depth != 3 {
		t.Errorf("depth = %d, ok=%v; want 3, true", depth, ok)
	}
	_, depth, _ = tr.PredictDepth(geom.Point{0.9}, 1)
	if depth != 0 {
		t.Errorf("far query depth = %d, want 0 (root)", depth)
	}
}

// Property: an eager, uncompressed tree's node summaries equal brute-force
// aggregates over the points contained in each node's block, and predictions
// match the reference walk. This pins the entire insert/predict pipeline to
// the paper's definitions.
func TestEagerSummariesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(3)
		maxDepth := 1 + rng.Intn(3)
		region := geomtest.MustRect(
			geom.Point{-2, -2, -2}[:d],
			geom.Point{3, 3, 3}[:d],
		)
		tr := mustTree(t, Config{Region: region, MaxDepth: maxDepth, MemoryLimit: 1 << 20})
		ref := newRef(region)
		n := 30 + rng.Intn(100)
		for i := 0; i < n; i++ {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
			}
			v := rng.Float64() * 100
			if err := tr.Insert(p, v); err != nil {
				t.Fatal(err)
			}
			ref.insert(p, v)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr.Walk(func(b Block) bool {
			s, c, ss := ref.aggregates(b.Region)
			if c != b.Count || !approxEq(s, b.Sum, 1e-9) || !approxEq(ss, b.SumSquares, 1e-9) {
				t.Errorf("trial %d depth %d %v: tree (s=%g c=%d ss=%g) ref (s=%g c=%d ss=%g)",
					trial, b.Depth, b.Region, b.Sum, b.Count, b.SumSquares, s, c, ss)
				return false
			}
			if !approxEq(b.SSE(), ref.sse(b.Region), 1e-7) {
				t.Errorf("trial %d: SSE mismatch at depth %d: tree %g ref %g",
					trial, b.Depth, b.SSE(), ref.sse(b.Region))
				return false
			}
			return true
		})
		for q := 0; q < 50; q++ {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
			}
			beta := 1 + rng.Intn(5)
			want, wantOK := ref.predict(p, beta, maxDepth)
			got, gotOK := tr.PredictBeta(p, beta)
			if gotOK != wantOK || !approxEq(got, want, 1e-9) {
				t.Fatalf("trial %d: Predict(%v, beta=%d) = (%g, %v), ref (%g, %v)",
					trial, p, beta, got, gotOK, want, wantOK)
			}
		}
	}
}

// Property: SSENC computed from summaries matches the direct Eq. 5 value,
// and SSEG via Eq. 9 matches the Eq. 8 definition (the increase in parent
// SSENC when a leaf is removed).
func TestSSENCAndSSEGMatchDefinitions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		d := 1 + rng.Intn(2)
		region := geom.UnitCube(d)
		tr := mustTree(t, Config{Region: region, MaxDepth: 3, MemoryLimit: 1 << 20})
		ref := newRef(region)
		for i := 0; i < 80; i++ {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			v := rng.Float64() * 50
			tr.Insert(p, v)
			ref.insert(p, v)
		}
		// Check SSENC at every node against the reference.
		var check func(n int32, block geom.Rect)
		check = func(n int32, block geom.Rect) {
			kids := tr.a.creationOrder(n, nil)
			var childRects []geom.Rect
			for _, c := range kids {
				childRects = append(childRects, block.Child(c.idx))
			}
			want := ref.ssenc(block, childRects)
			got, _ := ssenc(&tr.a, n, nil)
			if !approxEq(got, want, 1e-6) {
				t.Fatalf("trial %d: SSENC mismatch: summary %g direct %g", trial, got, want)
			}
			for _, c := range kids {
				check(c.ref, block.Child(c.idx))
			}
		}
		check(0, region)

		// Check SSEG (Eq. 9) == Eq. 8 at every leaf.
		var checkLeaf func(n int32, block geom.Rect, parentBlock geom.Rect, parentKids []geom.Rect)
		checkLeaf = func(n int32, block geom.Rect, parentBlock geom.Rect, parentKids []geom.Rect) {
			if tr.a.isLeaf(n) && tr.a.nodes[n].parent != noParent {
				before := ref.ssenc(parentBlock, parentKids)
				var after []geom.Rect
				for _, k := range parentKids {
					same := true
					for i := range k.Lo {
						if k.Lo[i] != block.Lo[i] || k.Hi[i] != block.Hi[i] {
							same = false
							break
						}
					}
					if !same {
						after = append(after, k)
					}
				}
				afterVal := ref.ssenc(parentBlock, after)
				leafSSENC := ref.ssenc(block, nil)
				eq8 := afterVal - (leafSSENC + before)
				if !approxEq(tr.a.sseg(n), eq8, 1e-6) {
					t.Fatalf("trial %d: SSEG Eq9 %g != Eq8 %g", trial, tr.a.sseg(n), eq8)
				}
			}
			kids := tr.a.creationOrder(n, nil)
			var kidRects []geom.Rect
			for _, c := range kids {
				kidRects = append(kidRects, block.Child(c.idx))
			}
			for _, c := range kids {
				checkLeaf(c.ref, block.Child(c.idx), block, kidRects)
			}
		}
		rootSpan := tr.a.creationOrder(0, nil)
		var rootKids []geom.Rect
		for _, c := range rootSpan {
			rootKids = append(rootKids, region.Child(c.idx))
		}
		for _, c := range rootSpan {
			checkLeaf(c.ref, region.Child(c.idx), region, rootKids)
		}
	}
}

func TestLazyDelaysPartitioning(t *testing.T) {
	// After a compression sets a positive threshold, identical values
	// (SSE 0) must not split blocks under the lazy strategy.
	region := geom.UnitCube(2)
	lazy := mustTree(t, Config{Region: region, Strategy: Lazy, MaxDepth: 6, MemoryLimit: 1 << 20})
	lazy.thSSE = 1 // simulate a post-compression threshold
	for i := 0; i < 50; i++ {
		lazy.Insert(geom.Point{0.3, 0.3}, 10) // constant value: SSE stays 0
	}
	if lazy.NodeCount() != 1 {
		t.Errorf("lazy tree with constant values grew to %d nodes, want 1", lazy.NodeCount())
	}
	// Once variance exceeds the threshold, it must split.
	lazy.Insert(geom.Point{0.3, 0.3}, 1000)
	if lazy.NodeCount() == 1 {
		t.Error("lazy tree did not split after SSE exceeded threshold")
	}
}

func TestEagerAlwaysPartitionsToMaxDepth(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(2), MaxDepth: 4, MemoryLimit: 1 << 20})
	tr.Insert(geom.Point{0.1, 0.1}, 5)
	if got := tr.Stats().MaxDepth; got != 4 {
		t.Errorf("eager insert reached depth %d, want 4", got)
	}
	if tr.NodeCount() != 5 {
		t.Errorf("node count %d, want 5 (root + 4 path nodes)", tr.NodeCount())
	}
}

func TestInsertsCounter(t *testing.T) {
	tr := mustTree(t, unitCfg(2))
	for i := 0; i < 7; i++ {
		tr.Insert(geom.Point{0.5, 0.5}, 1)
	}
	if tr.Inserts() != 7 {
		t.Errorf("Inserts = %d, want 7", tr.Inserts())
	}
}

func TestStatsAndDump(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(2), MaxDepth: 2, MemoryLimit: 1 << 20})
	tr.Insert(geom.Point{0.1, 0.1}, 5)
	tr.Insert(geom.Point{0.9, 0.9}, 15)
	s := tr.Stats()
	if s.Nodes != 5 || s.Leaves != 2 || s.MaxDepth != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.MemoryBytes != 5*DefaultNodeBytes {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes)
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if !strings.Contains(sb.String(), "count=2") {
		t.Errorf("Dump missing root line:\n%s", sb.String())
	}
	if got := strings.Count(sb.String(), "\n"); got != 5 {
		t.Errorf("Dump printed %d lines, want 5", got)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 3, MemoryLimit: 1 << 20})
	tr.Insert(geom.Point{0.1}, 1)
	visits := 0
	tr.Walk(func(Block) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early-stopped walk visited %d nodes, want 1", visits)
	}
}

func TestTSSENCNonNegative(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(2), MaxDepth: 3, MemoryLimit: 1 << 20})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		tr.Insert(geom.Point{rng.Float64(), rng.Float64()}, rng.Float64()*100)
	}
	if tsse := tr.TSSENC(); tsse < 0 {
		t.Errorf("TSSENC = %g, want >= 0", tsse)
	}
}

func TestConfigRejectsHostileValues(t *testing.T) {
	region := geom.UnitCube(2)
	cases := []Config{
		{Region: region, MaxDepth: 65},
		{Region: region, MaxDepth: 1 << 30},
		{Region: region, Alpha: math.NaN()},
		{Region: region, Alpha: math.Inf(1)},
		{Region: region, Gamma: math.NaN()},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: hostile config accepted: %+v", i, cfg)
		}
	}
}

func TestPredictEstimate(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(1), MaxDepth: 1, MemoryLimit: 1 << 20})
	if _, ok := tr.PredictEstimate(geom.Point{0.5}, 1); ok {
		t.Fatal("empty tree produced an estimate")
	}
	tr.Insert(geom.Point{0.1}, 10)
	tr.Insert(geom.Point{0.2}, 20)
	tr.Insert(geom.Point{0.9}, 60)
	est, ok := tr.PredictEstimate(geom.Point{0.1}, 1)
	if !ok || est.Value != 15 || est.Count != 2 || est.Depth != 1 {
		t.Errorf("left estimate = %+v", est)
	}
	// Population stddev of {10, 20} is 5.
	if !approxEq(est.StdDev, 5, 1e-9) {
		t.Errorf("StdDev = %g, want 5", est.StdDev)
	}
	// Constant values have zero spread.
	tr2 := mustTree(t, unitCfg(1))
	for i := 0; i < 10; i++ {
		tr2.Insert(geom.Point{0.5}, 7)
	}
	est, _ = tr2.PredictEstimate(geom.Point{0.5}, 1)
	if est.StdDev != 0 {
		t.Errorf("constant StdDev = %g, want 0", est.StdDev)
	}
	// The estimate's value agrees with PredictBeta everywhere.
	rng := rand.New(rand.NewSource(61))
	tr3 := mustTree(t, smallCfg(Eager))
	for i := 0; i < 1500; i++ {
		tr3.Insert(geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}, rng.Float64()*100)
	}
	for i := 0; i < 200; i++ {
		p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		beta := 1 + rng.Intn(8)
		v, _ := tr3.PredictBeta(p, beta)
		est, _ := tr3.PredictEstimate(p, beta)
		if v != est.Value {
			t.Fatalf("PredictEstimate diverged from PredictBeta at %v", p)
		}
		if est.Count < int64(beta) && est.Depth != 0 {
			t.Fatalf("estimate from non-root block with count %d < beta %d", est.Count, beta)
		}
	}
}

func TestHighDimensionalTree(t *testing.T) {
	// d=8: 256-way fanout. The paper uses d=4; the structure must hold up
	// for wider model spaces.
	d := 8
	tr := mustTree(t, Config{
		Region:      geom.UnitCube(d),
		MaxDepth:    3,
		MemoryLimit: 200 * DefaultNodeBytes,
	})
	rng := rand.New(rand.NewSource(81))
	cost := func(p geom.Point) float64 { return p[0]*100 + p[7]*50 }
	for i := 0; i < 3000; i++ {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		if err := tr.Insert(p, cost(p)); err != nil {
			t.Fatal(err)
		}
		if tr.MemoryUsed() > tr.Config().MemoryLimit {
			t.Fatal("memory over limit in 8-d")
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Accuracy sanity: better than predicting the global mean everywhere
	// would not hold at depth 0 only, so require SOME learned structure.
	var absErr, total float64
	for i := 0; i < 500; i++ {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pred, ok := tr.Predict(p)
		if !ok {
			t.Fatal("prediction failed")
		}
		diff := pred - cost(p)
		if diff < 0 {
			diff = -diff
		}
		absErr += diff
		total += cost(p)
	}
	if nae := absErr / total; nae > 0.6 {
		t.Errorf("8-d NAE = %g; tree learned nothing", nae)
	}
}
