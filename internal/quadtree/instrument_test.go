package quadtree

import (
	"math/rand"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/telemetry"
)

// TestInstrumentPublishes inserts past the memory limit and checks that the
// registry series mirror the tree's own counters — including the compression
// counters published from inside the compress pass.
func TestInstrumentPublishes(t *testing.T) {
	tr := mustTree(t, Config{
		Region:      geom.UnitCube(2),
		MaxDepth:    6,
		MemoryLimit: 40 * DefaultNodeBytes,
	})
	reg := telemetry.New()
	var clk telemetry.FakeClock
	tracer := telemetry.NewTracer(reg, &clk, nil)
	lbl := telemetry.L("model", "cost")
	tr.Instrument(reg, tracer, lbl)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		if err := tr.Insert(p, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}

	if got := reg.Counter("mlq_quadtree_inserts_total", "", lbl).Value(); got != tr.Inserts() {
		t.Errorf("inserts series = %d, tree says %d", got, tr.Inserts())
	}
	if got := reg.Gauge("mlq_quadtree_nodes", "", lbl).Value(); got != float64(tr.NodeCount()) {
		t.Errorf("nodes gauge = %g, tree says %d", got, tr.NodeCount())
	}
	if got := reg.Gauge("mlq_quadtree_memory_bytes", "", lbl).Value(); got != float64(tr.MemoryUsed()) {
		t.Errorf("memory gauge = %g, tree says %d", got, tr.MemoryUsed())
	}
	wantUtil := float64(tr.MemoryUsed()) / float64(tr.Config().MemoryLimit)
	if got := reg.Gauge("mlq_quadtree_memory_utilization", "", lbl).Value(); got != wantUtil {
		t.Errorf("utilization gauge = %g, want %g", got, wantUtil)
	}
	if tr.Compressions() == 0 {
		t.Fatal("workload did not trigger compression; the test needs a tighter limit")
	}
	if got := reg.Counter("mlq_quadtree_compressions_total", "", lbl).Value(); got != tr.Compressions() {
		t.Errorf("compressions series = %d, tree says %d", got, tr.Compressions())
	}
	if got := reg.Counter("mlq_quadtree_removed_nodes_total", "", lbl).Value(); got != tr.RemovedNodes() {
		t.Errorf("removed series = %d, tree says %d", got, tr.RemovedNodes())
	}
	if got := reg.Gauge("mlq_quadtree_sseg_queue_depth", "", lbl).Value(); got != float64(tr.SSEGQueueDepth()) {
		t.Errorf("sseg queue gauge = %g, tree says %d", got, tr.SSEGQueueDepth())
	}
	eager := reg.Counter("mlq_quadtree_eager_inserts_total", "", lbl).Value()
	deferred := reg.Counter("mlq_quadtree_deferred_inserts_total", "", lbl).Value()
	if eager != tr.EagerInserts() || deferred != tr.DeferredInserts() {
		t.Errorf("insert-mode series = (%d, %d), tree says (%d, %d)",
			eager, deferred, tr.EagerInserts(), tr.DeferredInserts())
	}
	if eager+deferred != tr.Inserts() {
		t.Errorf("eager %d + deferred %d != inserts %d", eager, deferred, tr.Inserts())
	}

	// Every compression pass is recorded as a "compress" span.
	h := reg.Histogram("mlq_trace_span_seconds", "", telemetry.L("span", "compress"), lbl)
	if got := h.Count(); got != tr.Compressions() {
		t.Errorf("compress span count = %d, compressions = %d", got, tr.Compressions())
	}
}

// TestInstrumentDetach checks nil/nil stops publishing, and that a detached
// clone does not inherit the original's telemetry.
func TestInstrumentDetach(t *testing.T) {
	tr := mustTree(t, unitCfg(2))
	reg := telemetry.New()
	lbl := telemetry.L("model", "cost")
	tr.Instrument(reg, nil, lbl)

	if err := tr.Insert(geom.Point{0.5, 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	c := reg.Counter("mlq_quadtree_inserts_total", "", lbl)
	if c.Value() != 1 {
		t.Fatalf("instrumented insert not published: %d", c.Value())
	}

	clone := tr.Clone()
	if err := clone.Insert(geom.Point{0.25, 0.25}, 2); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 1 {
		t.Errorf("clone published into the original's series: %d", c.Value())
	}

	tr.Instrument(nil, nil)
	if err := tr.Insert(geom.Point{0.75, 0.75}, 3); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 1 {
		t.Errorf("detached tree still publishing: %d", c.Value())
	}
}

// TestInstrumentNilTracer checks a registry-only instrumentation survives
// compression (the span hook must tolerate a nil tracer).
func TestInstrumentNilTracer(t *testing.T) {
	tr := mustTree(t, Config{
		Region:      geom.UnitCube(2),
		MemoryLimit: 20 * DefaultNodeBytes,
	})
	tr.Instrument(telemetry.New(), nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		if err := tr.Insert(geom.Point{rng.Float64(), rng.Float64()}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Compressions() == 0 {
		t.Error("no compression ran")
	}
}
