package quadtree

import (
	"container/heap"
	"time"
)

// heapItem pairs a leaf candidate with its (fixed) SSEG key. SSEG values do
// not change while compression runs — removing a leaf leaves every other
// node's summary, and therefore every other SSEG, untouched — so keys are
// computed once at push time.
type heapItem struct {
	n    *node
	sseg float64
}

// leafHeap is a min-heap of removal candidates ordered by SSEG.
type leafHeap []heapItem

func (h leafHeap) Len() int            { return len(h) }
func (h leafHeap) Less(i, j int) bool  { return h[i].sseg < h[j].sseg }
func (h leafHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *leafHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// victimKey returns the ordering key for compression victims under the
// configured policy: SSEG (the paper's), point count, or a deterministic
// pseudo-random key (for ablations — see harness.Ablate("policy", ...)).
func (t *Tree) victimKey() func(*node) float64 {
	switch t.cfg.Policy {
	case CompressCount:
		return func(n *node) float64 { return float64(n.count) }
	case CompressRandom:
		seq := uint64(t.compressions)*2654435761 + 1
		return func(n *node) float64 {
			seq = seq*6364136223846793005 + 1442695040888963407
			return float64(seq >> 11)
		}
	default:
		return (*node).sseg
	}
}

// Compress runs one compression pass immediately, regardless of current
// memory use. Insert calls this automatically when the memory limit is
// exceeded; exposing it lets callers shrink a model ahead of a known burst.
func (t *Tree) Compress() { t.compress() }

// compress implements the algorithm of Fig. 6. It removes leaves in
// ascending SSEG order — the nodes with the fewest points and the averages
// closest to their parents' — until at least γ of the allocated memory has
// been freed and usage is back under the limit. Parents that become leaves
// join the candidate queue, making the pass incremental bottom-up.
//
// Summaries of surviving nodes are untouched: every ancestor already counts
// the removed leaf's points, so predictions simply fall back to coarser
// resolutions (the minimal increase in TSSENC the SSEG ordering guarantees).
func (t *Tree) compress() {
	//lint:ignore detertime stopwatch feeding APC/AUC accounting; the duration is never consulted by any decision
	start := time.Now()
	defer func() {
		d := time.Since(start)
		t.compressTime += d
		t.compressions++
		if t.cfg.Strategy == Lazy {
			// Re-snapshot th_SSE = α·SSE(root) (Eq. 7). Before the
			// first compression the threshold is zero, so lazy
			// behaves eagerly until memory first fills up.
			t.thSSE = t.cfg.Alpha * t.root.sse()
		}
		if t.tel != nil {
			t.tel.compressDone(t, d)
		}
	}()

	key := t.victimKey()
	h := make(leafHeap, 0, t.nodeCount)
	var collect func(n *node)
	collect = func(n *node) {
		if n.isLeaf() {
			if n.parent != nil {
				h = append(h, heapItem{n: n, sseg: key(n)})
			}
			return
		}
		for _, c := range n.kids {
			collect(c.n)
		}
	}
	collect(t.root)
	heap.Init(&h)
	t.ssegQueueDepth = h.Len()

	needFree := int(t.cfg.Gamma * float64(t.cfg.MemoryLimit))
	if needFree < t.cfg.NodeBytes {
		needFree = t.cfg.NodeBytes // always make progress
	}
	freed := 0
	for h.Len() > 0 {
		if freed >= needFree && t.MemoryUsed() <= t.cfg.MemoryLimit {
			break
		}
		it := heap.Pop(&h).(heapItem)
		leaf := it.n
		parent := leaf.parent
		// Unlink. The parent's child slice holds the only other
		// reference to the leaf.
		for _, c := range parent.kids {
			if c.n == leaf {
				parent.removeChild(c.idx)
				break
			}
		}
		leaf.parent = nil
		t.nodeCount--
		t.removedNodes++
		freed += t.cfg.NodeBytes
		if parent != t.root && parent.isLeaf() {
			heap.Push(&h, heapItem{n: parent, sseg: key(parent)})
		}
	}
}
