package quadtree

import (
	"container/heap"
	"time"
)

// heapItem pairs a leaf candidate with its (fixed) SSEG key. SSEG values do
// not change while compression runs — removing a leaf leaves every other
// node's summary, and therefore every other SSEG, untouched — so keys are
// computed once at push time.
type heapItem struct {
	ref  int32
	sseg float64
}

// leafHeap is a min-heap of removal candidates ordered by SSEG.
type leafHeap []heapItem

func (h leafHeap) Len() int            { return len(h) }
func (h leafHeap) Less(i, j int) bool  { return h[i].sseg < h[j].sseg }
func (h leafHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *leafHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// victimKey returns the ordering key for compression victims under the
// configured policy: SSEG (the paper's), point count, or a deterministic
// pseudo-random key (for ablations — see harness.Ablate("policy", ...)).
func (t *Tree) victimKey() func(int32) float64 {
	switch t.cfg.Policy {
	case CompressCount:
		return func(n int32) float64 { return float64(t.a.nodes[n].count) }
	case CompressRandom:
		seq := uint64(t.compressions)*2654435761 + 1
		return func(n int32) float64 {
			seq = seq*6364136223846793005 + 1442695040888963407
			return float64(seq >> 11)
		}
	default:
		return t.a.sseg
	}
}

// Compress runs one compression pass immediately, regardless of current
// memory use. Insert calls this automatically when the memory limit is
// exceeded; exposing it lets callers shrink a model ahead of a known burst.
func (t *Tree) Compress() { t.compress() }

// compress implements the algorithm of Fig. 6. It removes leaves in
// ascending SSEG order — the nodes with the fewest points and the averages
// closest to their parents' — until at least γ of the allocated memory has
// been freed and usage is back under the limit. Parents that become leaves
// join the candidate queue, making the pass incremental bottom-up.
//
// Summaries of surviving nodes are untouched: every ancestor already counts
// the removed leaf's points, so predictions simply fall back to coarser
// resolutions (the minimal increase in TSSENC the SSEG ordering guarantees).
//
// Victims are collected depth-first with children visited in creation
// order — the same enumeration the pointer-linked implementation's child
// slices produced — so heap layout, tie-breaking and the stateful random
// policy's key assignment are all preserved bit-for-bit. The pass ends with
// a stable arena compaction, which keeps slot order equal to creation order
// for the next pass.
func (t *Tree) compress() {
	//lint:ignore detertime stopwatch feeding APC/AUC accounting; the duration is never consulted by any decision
	start := time.Now()
	defer func() {
		d := time.Since(start)
		t.compressTime += d
		t.compressions++
		if t.cfg.Strategy == Lazy {
			// Re-snapshot th_SSE = α·SSE(root) (Eq. 7). Before the
			// first compression the threshold is zero, so lazy
			// behaves eagerly until memory first fills up.
			t.thSSE = t.cfg.Alpha * t.a.sse(0)
		}
		if t.tel != nil {
			t.tel.compressDone(t, d)
		}
	}()

	key := t.victimKey()
	h := make(leafHeap, 0, t.nodeCount)
	// The collect recursion reuses one scratch buffer for the per-level
	// creation-order views; each level records its own window into it.
	scratch := t.collectScratch[:0]
	var collect func(n int32)
	collect = func(n int32) {
		if t.a.isLeaf(n) {
			if n != 0 {
				h = append(h, heapItem{ref: n, sseg: key(n)})
			}
			return
		}
		base := len(scratch)
		scratch = t.a.creationOrder(n, scratch)
		for i := base; i < len(scratch); i++ {
			collect(scratch[i].ref)
		}
		scratch = scratch[:base]
	}
	collect(0)
	t.collectScratch = scratch[:0]
	heap.Init(&h)
	t.ssegQueueDepth = h.Len()

	needFree := int(t.cfg.Gamma * float64(t.cfg.MemoryLimit))
	if needFree < t.cfg.NodeBytes {
		needFree = t.cfg.NodeBytes // always make progress
	}
	freed := 0
	for h.Len() > 0 {
		if freed >= needFree && t.MemoryUsed() <= t.cfg.MemoryLimit {
			break
		}
		it := heap.Pop(&h).(heapItem)
		leaf := it.ref
		parent := t.a.nodes[leaf].parent
		// Unlink. The parent's span holds the only reference to the leaf.
		for _, c := range t.a.span(parent) {
			if c.ref == leaf {
				t.a.removeChild(parent, c.idx)
				break
			}
		}
		t.a.nodes[leaf].parent = deadParent
		t.nodeCount--
		t.removedNodes++
		freed += t.cfg.NodeBytes
		if parent != 0 && t.a.isLeaf(parent) {
			heap.Push(&h, heapItem{ref: parent, sseg: key(parent)})
		}
	}

	// Stable compaction: squeeze the dead slots out of the arena and drop
	// the kids-slice garbage, so slot order keeps equalling creation order.
	t.a.compactNodes()
	t.a.compactKids()
}
