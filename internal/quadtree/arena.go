package quadtree

import "math"

// The tree's nodes live in a flat arena: a single []node slice addressed by
// int32 slot, with every node's children held as a contiguous span of a
// shared []kidRef slice. The layout replaces the seed implementation's
// pointer-linked nodes (parent pointer + per-node child slice) and buys
// three things at once:
//
//   - the hot Predict descent walks two flat slices instead of chasing heap
//     pointers, and finds children by binary search over a span sorted by
//     quadrant index instead of a linear scan;
//   - per-node Go memory shrinks from ~56 bytes + a 16-byte child entry +
//     one heap allocation per node to a 40-byte slot + an 8-byte child
//     entry, all in two allocations per tree;
//   - the whole tree is trivially copyable — Snapshot and Clone are a
//     handful of slice copies — which is what makes the lock-free
//     epoch/snapshot read path in core affordable.
//
// Two orderings coexist deliberately. Spans are *stored* sorted by quadrant
// index so lookups can binary-search. Everything that *enumerates* children
// — serialization, compression victim collection, SSENC sums, Walk — visits
// them in creation order (ascending slot, see creationOrder), which is
// exactly the order the seed implementation's append-built child slices
// had. That equivalence is what keeps catalog frames byte-identical and
// every experiment figure bit-identical across the refactor: compression
// tie-breaking and the ablation policies' victim keys depend on collection
// order, and float summation order is observable in the last ULP.
//
// Slot allocation is append-only between compression passes, so ascending
// slot number is ascending creation time; the stable compaction at the end
// of each pass (see compress) preserves relative order, keeping the
// invariant across the tree's whole lifetime.

// noParent marks the root's parent slot.
const noParent = int32(-1)

// deadParent marks a node slot removed by the current compression pass and
// awaiting compaction. No slot carries it outside compress.
const deadParent = int32(-2)

// kidRef is one child entry: the quadrant index and the child's arena slot.
type kidRef struct {
	idx uint32
	ref int32
}

// node holds the summary information of one block (§4.1): the sum, count and
// sum of squares of the values of every data point that maps into the block
// (including points also counted by its descendants), plus the arena links.
type node struct {
	sum    float64
	ss     float64
	count  int64
	parent int32
	kidOff int32
	kidLen int32
}

// arena is the flat node store. nodes[0] is always the root.
type arena struct {
	nodes []node
	kids  []kidRef

	// kidGarbage counts dead kidRef entries (spans abandoned by relocation
	// or shrunk by removal); compactKids reclaims them.
	kidGarbage int
}

// span returns n's child entries, sorted by quadrant index.
func (a *arena) span(n int32) []kidRef {
	nd := &a.nodes[n]
	return a.kids[nd.kidOff : nd.kidOff+nd.kidLen : nd.kidOff+nd.kidLen]
}

// child returns the slot of n's child with the given quadrant index, or -1.
// The span is sorted by index, so the lookup is a binary search.
func (a *arena) child(n int32, idx uint32) int32 {
	nd := &a.nodes[n]
	lo, hi := nd.kidOff, nd.kidOff+nd.kidLen
	for lo < hi {
		mid := (lo + hi) >> 1
		if a.kids[mid].idx < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < nd.kidOff+nd.kidLen && a.kids[lo].idx == idx {
		return a.kids[lo].ref
	}
	return -1
}

// isLeaf reports whether the slot has no children.
func (a *arena) isLeaf(n int32) bool { return a.nodes[n].kidLen == 0 }

// addChild allocates a fresh slot for a new child of parent and links it
// into the parent's span at its sorted position. Allocation is append-only:
// the new slot is len(nodes), so slot order is creation order.
func (a *arena) addChild(parent int32, idx uint32) int32 {
	ref := int32(len(a.nodes))
	a.nodes = append(a.nodes, node{parent: parent})

	nd := &a.nodes[parent]
	// Sorted insertion position within the span.
	lo, hi := nd.kidOff, nd.kidOff+nd.kidLen
	for lo < hi {
		mid := (lo + hi) >> 1
		if a.kids[mid].idx < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	pos := lo
	if nd.kidOff+nd.kidLen == int32(len(a.kids)) {
		// The span sits at the tail of the kids slice: grow it in place.
		a.kids = append(a.kids, kidRef{})
		copy(a.kids[pos+1:], a.kids[pos:nd.kidOff+nd.kidLen])
		a.kids[pos] = kidRef{idx: idx, ref: ref}
		nd.kidLen++
		return ref
	}
	// Relocate the span to the tail with the new entry spliced in; the old
	// region becomes garbage until the next compaction.
	newOff := int32(len(a.kids))
	a.kids = append(a.kids, a.kids[nd.kidOff:pos]...)
	a.kids = append(a.kids, kidRef{idx: idx, ref: ref})
	a.kids = append(a.kids, a.kids[pos:nd.kidOff+nd.kidLen]...)
	a.kidGarbage += int(nd.kidLen)
	nd.kidOff = newOff
	nd.kidLen++
	return ref
}

// removeChild unlinks the child with the given quadrant index from n's
// span. The vacated tail slot of the span becomes garbage.
func (a *arena) removeChild(n int32, idx uint32) {
	nd := &a.nodes[n]
	lo, hi := nd.kidOff, nd.kidOff+nd.kidLen
	for lo < hi {
		mid := (lo + hi) >> 1
		if a.kids[mid].idx < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= nd.kidOff+nd.kidLen || a.kids[lo].idx != idx {
		return
	}
	copy(a.kids[lo:], a.kids[lo+1:nd.kidOff+nd.kidLen])
	nd.kidLen--
	a.kidGarbage++
}

// creationOrder appends n's child entries to buf in creation (ascending
// slot) order and returns the extended buffer. Spans are tiny (at most 2^d
// live entries, typically well under 16), so an insertion sort is both
// allocation-free and faster than sort.Slice.
func (a *arena) creationOrder(n int32, buf []kidRef) []kidRef {
	base := len(buf)
	buf = append(buf, a.span(n)...)
	ord := buf[base:]
	for i := 1; i < len(ord); i++ {
		e := ord[i]
		j := i
		for j > 0 && ord[j-1].ref > e.ref {
			ord[j] = ord[j-1]
			j--
		}
		ord[j] = e
	}
	return buf
}

// compactKids rewrites the kids slice without garbage, walking node slots in
// order so every span stays contiguous and index-sorted.
func (a *arena) compactKids() {
	if a.kidGarbage == 0 {
		return
	}
	fresh := make([]kidRef, 0, len(a.kids)-a.kidGarbage)
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.parent == deadParent {
			continue
		}
		off := int32(len(fresh))
		fresh = append(fresh, a.kids[nd.kidOff:nd.kidOff+nd.kidLen]...)
		nd.kidOff = off
	}
	a.kids = fresh
	a.kidGarbage = 0
}

// compactNodes squeezes dead slots out of the node slice, remapping parents
// and child refs. The compaction is stable — surviving slots keep their
// relative order — which preserves the slot-order-is-creation-order
// invariant creationOrder depends on. It returns the number of live slots.
func (a *arena) compactNodes() int {
	remap := make([]int32, len(a.nodes))
	live := 0
	for i := range a.nodes {
		if a.nodes[i].parent == deadParent {
			remap[i] = -1
			continue
		}
		remap[i] = int32(live)
		if live != i {
			a.nodes[live] = a.nodes[i]
		}
		live++
	}
	if live == len(a.nodes) {
		return live
	}
	a.nodes = a.nodes[:live]
	for i := range a.nodes {
		if p := a.nodes[i].parent; p >= 0 {
			a.nodes[i].parent = remap[p]
		}
	}
	for i := range a.kids {
		if r := a.kids[i].ref; r >= 0 {
			a.kids[i].ref = remap[r]
		}
	}
	return live
}

// clone returns an independent copy of the arena — two slice copies. This
// is the whole snapshot cost of the epoch-publishing read path.
func (a *arena) clone() arena {
	nodes := make([]node, len(a.nodes))
	copy(nodes, a.nodes)
	kids := make([]kidRef, len(a.kids))
	copy(kids, a.kids)
	return arena{nodes: nodes, kids: kids, kidGarbage: a.kidGarbage}
}

// --- summary math (Eq. 3, 4, 9) ---

// avg returns S(b)/C(b) (Eq. 3), or 0 for an empty block.
func (a *arena) avg(n int32) float64 {
	nd := &a.nodes[n]
	if nd.count == 0 {
		return 0
	}
	return nd.sum / float64(nd.count)
}

// sse returns SSE(b) = SS(b) − C(b)·AVG(b)² (Eq. 4), clamped at zero
// against floating-point cancellation.
func (a *arena) sse(n int32) float64 {
	nd := &a.nodes[n]
	if nd.count == 0 {
		return 0
	}
	v := nd.ss - nd.sum*nd.sum/float64(nd.count)
	if v < 0 {
		return 0
	}
	return v
}

// sseg returns SSEG(b) = C(b)·(AVG(p) − AVG(b))² (Eq. 9), the increase in
// TSSENC caused by removing b. The root has no parent and is never removed.
func (a *arena) sseg(n int32) float64 {
	nd := &a.nodes[n]
	if nd.parent == noParent {
		return math.Inf(1)
	}
	d := a.avg(nd.parent) - a.avg(n)
	return float64(nd.count) * d * d
}

// add folds one observation into the slot's summary.
func (a *arena) add(n int32, v float64) {
	nd := &a.nodes[n]
	nd.sum += v
	nd.ss += v * v
	nd.count++
}
