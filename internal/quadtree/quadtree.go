// Package quadtree implements the memory-limited quadtree (MLQ) of He, Lee
// and Snapp (EDBT 2004): a d-dimensional quadtree that stores only summary
// statistics — sum, count and sum of squares of the observed values — in
// every node, supports fast point prediction at multiple resolutions, grows
// under an eager or lazy insertion strategy, and compresses itself back under
// a strict memory budget by discarding the leaves whose removal least
// increases the expected prediction error (smallest SSEG, Eq. 9).
//
// The tree never stores individual data points; its memory use is exactly
// NodeCount() * Config.NodeBytes and is kept at or below Config.MemoryLimit
// by automatic compression.
//
// Nodes live in a flat arena (see arena.go) rather than as pointer-linked
// heap objects, which makes the whole tree copyable in a few slice copies;
// Snapshot exploits that to hand out immutable read-only views that are safe
// for concurrent prediction while the tree keeps learning.
package quadtree

import (
	"fmt"
	"math"
	"time"

	"mlq/internal/geom"
)

// Strategy selects how eagerly Insert partitions blocks (§4.4).
type Strategy int

const (
	// Eager partitions down to the maximum depth λ on every insertion
	// (the paper's MLQ-E; equivalent to a zero SSE threshold).
	Eager Strategy = iota
	// Lazy partitions a leaf only once its SSE reaches th_SSE = α·SSE(root)
	// (the paper's MLQ-L). The threshold is re-snapshotted at every
	// compression and is zero before the first one.
	Lazy
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Eager:
		return "MLQ-E"
	case Lazy:
		return "MLQ-L"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultNodeBytes charges each node its summary payload: sum (8 bytes) +
// sum of squares (8) + count (4). See DESIGN.md §2 for the rationale.
const DefaultNodeBytes = 20

// Config parameterizes a Tree. The zero value is not usable; Region must be
// set. All other fields default to the paper's tuned values (§5.1).
type Config struct {
	// Region is the full data space the tree partitions. Points inserted
	// or queried outside it are clamped onto its boundary.
	Region geom.Rect
	// Strategy selects eager (MLQ-E) or lazy (MLQ-L) insertion.
	Strategy Strategy
	// MaxDepth is λ, the maximum tree depth (root is depth 0).
	// Default 6.
	MaxDepth int
	// Alpha scales the lazy SSE partitioning threshold (Eq. 7).
	// Default 0.05.
	Alpha float64
	// Beta is the default minimum block count for Predict (Fig. 3).
	// Default 1.
	Beta int
	// Gamma is the minimum fraction of allocated memory each compression
	// must free (Fig. 6). Default 0.001 (the paper's 0.1%).
	Gamma float64
	// MemoryLimit is the memory budget in bytes. Default 1843 (1.8 KB).
	MemoryLimit int
	// NodeBytes is the memory charged per node. Default DefaultNodeBytes.
	NodeBytes int
	// Policy selects the compression victim ordering. Default
	// CompressSSEG (the paper's). The alternatives exist for ablation:
	// they quantify how much the SSEG ordering actually buys.
	Policy CompressionPolicy
}

// CompressionPolicy orders compression victims.
type CompressionPolicy int

const (
	// CompressSSEG removes leaves in ascending SSEG order (Eq. 9) — the
	// paper's policy, minimizing the increase in TSSENC.
	CompressSSEG CompressionPolicy = iota
	// CompressCount removes leaves with the fewest data points first,
	// ignoring how much their average differs from their parent's.
	CompressCount
	// CompressRandom removes leaves in a deterministic pseudo-random
	// order — the ablation floor.
	CompressRandom
)

// String names the policy.
func (p CompressionPolicy) String() string {
	switch p {
	case CompressSSEG:
		return "sseg"
	case CompressCount:
		return "count"
	case CompressRandom:
		return "random"
	default:
		return fmt.Sprintf("CompressionPolicy(%d)", int(p))
	}
}

// withDefaults returns a copy of c with unset fields filled in.
func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 6
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	//lint:ignore floatguard exact zero is the documented unset-field sentinel
	if c.Gamma == 0 {
		c.Gamma = 0.001
	}
	if c.MemoryLimit == 0 {
		c.MemoryLimit = 1843
	}
	if c.NodeBytes == 0 {
		c.NodeBytes = DefaultNodeBytes
	}
	return c
}

// validate reports configuration errors after defaulting.
func (c Config) validate() error {
	if c.Region.Dims() == 0 {
		return fmt.Errorf("quadtree: Config.Region must be set")
	}
	if c.Region.Dims() > 20 {
		return fmt.Errorf("quadtree: %d dimensions yields 2^%d children per node; at most 20 supported", c.Region.Dims(), c.Region.Dims())
	}
	// Beyond ~52 halvings a float64 interval's midpoint equals its lower
	// bound, so depths past 64 are meaningless and only invite abuse
	// (e.g. a corrupted serialized header making Insert build a
	// billion-node chain).
	if c.MaxDepth < 0 || c.MaxDepth > 64 {
		return fmt.Errorf("quadtree: MaxDepth must be in [0, 64], got %d", c.MaxDepth)
	}
	if c.Alpha < 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0) {
		return fmt.Errorf("quadtree: Alpha must be finite and >= 0, got %g", c.Alpha)
	}
	if c.Beta < 1 {
		return fmt.Errorf("quadtree: Beta must be >= 1, got %d", c.Beta)
	}
	if !(c.Gamma > 0 && c.Gamma <= 1) { // written to also reject NaN
		return fmt.Errorf("quadtree: Gamma must be in (0, 1], got %g", c.Gamma)
	}
	if c.NodeBytes <= 0 {
		return fmt.Errorf("quadtree: NodeBytes must be > 0, got %d", c.NodeBytes)
	}
	if c.MemoryLimit < c.NodeBytes {
		return fmt.Errorf("quadtree: MemoryLimit %d cannot hold even the root node (%d bytes)", c.MemoryLimit, c.NodeBytes)
	}
	switch c.Strategy {
	case Eager, Lazy:
	default:
		return fmt.Errorf("quadtree: unknown strategy %d", int(c.Strategy))
	}
	switch c.Policy {
	case CompressSSEG, CompressCount, CompressRandom:
	default:
		return fmt.Errorf("quadtree: unknown compression policy %d", int(c.Policy))
	}
	return nil
}

// Tree is a memory-limited quadtree. It is not safe for concurrent use; for
// concurrent readers take a Snapshot (or wrap the core.Model built on it
// with the snapshot-publishing machinery in core).
type Tree struct {
	cfg       Config
	a         arena
	nodeCount int
	thSSE     float64 // lazy partitioning threshold; 0 until first compression

	inserts         int64
	eagerInserts    int64 // inserts that partitioned down to MaxDepth
	deferredInserts int64 // inserts stopped early by the lazy SSE threshold
	compressions    int64
	removedNodes    int64
	resizes         int64 // live-limit changes applied by Resize
	ssegQueueDepth  int   // candidate-leaf queue size of the latest compression
	compressTime    time.Duration
	childCapacity   uint32 // 2^d

	// collectScratch is the reusable creation-order buffer of the
	// compression pass's victim collection (see compress).
	collectScratch []kidRef

	tel *treeTelemetry // nil unless Instrument was called
}

// New returns an empty tree for the given configuration.
func New(cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.Region = cfg.Region.Clone()
	return &Tree{
		cfg:           cfg,
		a:             arena{nodes: []node{{parent: noParent}}},
		nodeCount:     1,
		childCapacity: 1 << uint(cfg.Region.Dims()),
	}, nil
}

// Config returns the tree's effective (defaulted) configuration. Its
// MemoryLimit field reports the live budget — after a Resize it differs from
// the value the tree was constructed with.
func (t *Tree) Config() Config { return t.cfg }

// NodeCount returns the current number of nodes, including the root.
func (t *Tree) NodeCount() int { return t.nodeCount }

// MemoryUsed returns the memory charged to the tree in bytes.
func (t *Tree) MemoryUsed() int { return t.nodeCount * t.cfg.NodeBytes }

// Inserts returns the number of data points inserted so far.
func (t *Tree) Inserts() int64 { return t.inserts }

// EagerInserts returns how many inserts partitioned all the way down to
// MaxDepth (every insert under MLQ-E; under MLQ-L those that kept finding
// refinable nodes).
func (t *Tree) EagerInserts() int64 { return t.eagerInserts }

// DeferredInserts returns how many inserts stopped early because the leaf's
// SSE was under the lazy threshold th_SSE — the work MLQ-L's deferral
// avoids. Always zero under MLQ-E.
func (t *Tree) DeferredInserts() int64 { return t.deferredInserts }

// SSEGQueueDepth returns the candidate-leaf queue size of the most recent
// compression pass: how many leaves competed for removal. Zero before the
// first compression.
func (t *Tree) SSEGQueueDepth() int { return t.ssegQueueDepth }

// Compressions returns how many compression passes have run.
func (t *Tree) Compressions() int64 { return t.compressions }

// CompressTime returns the cumulative wall time spent compressing. Callers
// timing Insert can subtract this to separate insertion cost (IC) from
// compression cost (CC) as in the paper's Experiment 2.
func (t *Tree) CompressTime() time.Duration { return t.compressTime }

// RemovedNodes returns the total number of nodes discarded by compression.
func (t *Tree) RemovedNodes() int64 { return t.removedNodes }

// Threshold returns the current lazy partitioning threshold th_SSE.
func (t *Tree) Threshold() float64 {
	if t.cfg.Strategy == Eager {
		return 0
	}
	return t.thSSE
}

// Insert records one UDF execution: the data point p (the model variables)
// observed to have the given cost value. Points outside the region are
// clamped onto it. Implements the algorithm of Fig. 4, then compresses if
// the memory limit is exceeded.
func (t *Tree) Insert(p geom.Point, value float64) error {
	if len(p) != t.cfg.Region.Dims() {
		return fmt.Errorf("quadtree: point has %d dims, tree has %d", len(p), t.cfg.Region.Dims())
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("quadtree: cost value must be finite, got %g", value)
	}
	p = t.cfg.Region.Clamp(p)

	th := t.Threshold()
	cn := int32(0)
	region := t.cfg.Region
	t.a.add(cn, value)
	deferred := false
	for depth := 0; depth < t.cfg.MaxDepth; depth++ {
		// Fig. 4 line 3-4: descend while the current node should be
		// refined (SSE at or above threshold) or already has children.
		if t.a.isLeaf(cn) && t.a.sse(cn) < th {
			deferred = true
			break
		}
		idx := region.ChildIndex(p)
		child := t.a.child(cn, idx)
		if child < 0 {
			child = t.a.addChild(cn, idx)
			t.nodeCount++
		}
		region = region.Child(idx)
		cn = child
		t.a.add(cn, value)
	}
	t.inserts++
	if deferred {
		t.deferredInserts++
	} else {
		t.eagerInserts++
	}

	if t.MemoryUsed() > t.cfg.MemoryLimit {
		t.compress()
	} else if t.a.kidGarbage > len(t.a.kids)/2 && t.a.kidGarbage > 64 {
		// Span relocations leave holes in the kids slice; when trees run
		// under their memory limit for long stretches no compression pass
		// comes along to compact them, so bound the garbage here.
		t.a.compactKids()
	}
	if t.tel != nil {
		t.tel.publish(t)
	}
	return nil
}

// Predict estimates the cost at query point p using the tree's default β.
// ok is false only when the tree has seen no data at all.
func (t *Tree) Predict(p geom.Point) (value float64, ok bool) {
	return t.PredictBeta(p, t.cfg.Beta)
}

// PredictBeta implements the prediction algorithm of Fig. 3: it returns the
// average value of the lowest (deepest) block containing p whose count is at
// least beta. If no block qualifies (fewer than beta points seen in total),
// it falls back to the root average so that predictions are available from
// the very first observation.
func (t *Tree) PredictBeta(p geom.Point, beta int) (value float64, ok bool) {
	return predictBeta(&t.a, t.cfg.Region, p, beta)
}

// Estimate is a prediction with its supporting evidence: the block's mean,
// the standard deviation of the observations behind it, how many there
// were, and the block's depth. Because every node stores the sum of squares
// (§4.1), uncertainty comes for free — an optimizer can hedge plans when
// StdDev/Value is large.
type Estimate struct {
	Value  float64
	StdDev float64
	Count  int64
	Depth  int
}

// finiteAvg guards the prediction path against the finite-cost invariant:
// Insert rejects NaN/Inf observations, so a non-finite block average can
// only mean summary corruption — report "no information" rather than let it
// poison a plan choice (§4.2's SSE math corrupts silently past this point).
func finiteAvg(a *arena, n int32) (float64, bool) {
	v := a.avg(n)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// PredictEstimate is PredictBeta returning the full Estimate. ok is false
// only when the tree has seen no data at all.
func (t *Tree) PredictEstimate(p geom.Point, beta int) (Estimate, bool) {
	return predictEstimate(&t.a, t.cfg.Region, p, beta)
}

// PredictDepth returns, alongside the prediction, the depth of the block the
// prediction was taken from. Useful for diagnostics and tests.
func (t *Tree) PredictDepth(p geom.Point, beta int) (value float64, depth int, ok bool) {
	return predictDepth(&t.a, t.cfg.Region, p, beta)
}

// The prediction algorithms take the arena and config explicitly so that
// Tree and the immutable Snapshot share one implementation of the hot path.

// descend walks from the root to the deepest block containing p, returning
// the lowest slot whose count is at least beta and its depth (Fig. 3's
// search). This is the hot path every prediction pays, so it avoids the
// conveniences the mutation paths use: the arena slices are hoisted into
// locals, each node is loaded exactly once per level, the child binary
// search is inlined over the shared kids slice, and the region bounds are
// narrowed in scratch buffers instead of allocating a fresh Rect per level
// with geom.Rect.Child. The midpoint arithmetic is the same expression
// Rect.ChildIndex and Rect.Child evaluate, so the descent visits exactly
// the slots the allocating version would.
func descend(a *arena, region geom.Rect, p geom.Point, beta int) (best int32, bestDepth int) {
	nodes, kids := a.nodes, a.kids
	var lobuf, hibuf, midbuf [8]float64
	var lo, hi, mids []float64
	if n := len(region.Lo); n <= len(lobuf) {
		lo, hi, mids = lobuf[:n], hibuf[:n], midbuf[:n]
	} else {
		lo, hi, mids = make([]float64, n), make([]float64, n), make([]float64, n)
	}
	copy(lo, region.Lo)
	copy(hi, region.Hi)
	cn := int32(0)
	for d := 0; ; d++ {
		nd := &nodes[cn]
		if nd.count >= int64(beta) {
			best, bestDepth = cn, d
		}
		var idx uint32
		for i, v := range p {
			mid := lo[i] + (hi[i]-lo[i])/2
			mids[i] = mid
			if v >= mid {
				idx |= 1 << uint(i)
			}
		}
		l, h := nd.kidOff, nd.kidOff+nd.kidLen
		for l < h {
			m := (l + h) >> 1
			if kids[m].idx < idx {
				l = m + 1
			} else {
				h = m
			}
		}
		if l >= nd.kidOff+nd.kidLen || kids[l].idx != idx {
			return best, bestDepth
		}
		for i := range mids {
			if idx&(1<<uint(i)) != 0 {
				lo[i] = mids[i]
			} else {
				hi[i] = mids[i]
			}
		}
		cn = kids[l].ref
	}
}

// predictBeta implements Fig. 3 over an arena.
func predictBeta(a *arena, region geom.Rect, p geom.Point, beta int) (value float64, ok bool) {
	if a.nodes[0].count == 0 {
		return 0, false
	}
	if beta < 1 {
		beta = 1
	}
	best, _ := descend(a, region, region.Clamp(p), beta)
	return finiteAvg(a, best)
}

// predictEstimate implements PredictEstimate over an arena.
func predictEstimate(a *arena, region geom.Rect, p geom.Point, beta int) (Estimate, bool) {
	if a.nodes[0].count == 0 {
		return Estimate{}, false
	}
	if beta < 1 {
		beta = 1
	}
	best, bestDepth := descend(a, region, region.Clamp(p), beta)
	var std float64
	if a.nodes[best].count > 0 {
		std = math.Sqrt(a.sse(best) / float64(a.nodes[best].count))
	}
	v, ok := finiteAvg(a, best)
	if !ok {
		return Estimate{}, false
	}
	return Estimate{
		Value:  v,
		StdDev: std,
		Count:  a.nodes[best].count,
		Depth:  bestDepth,
	}, true
}

// predictDepth implements PredictDepth over an arena.
func predictDepth(a *arena, region geom.Rect, p geom.Point, beta int) (value float64, depth int, ok bool) {
	if a.nodes[0].count == 0 {
		return 0, 0, false
	}
	if beta < 1 {
		beta = 1
	}
	best, bestDepth := descend(a, region, region.Clamp(p), beta)
	v, ok := finiteAvg(a, best)
	return v, bestDepth, ok
}
