package quadtree

import (
	"io"

	"mlq/internal/geom"
)

// Snapshot is an immutable point-in-time copy of a Tree. It supports the
// whole read API — prediction, traversal, serialization — with no locking
// and no reference back to the live tree: the arena layout makes the copy
// two slice copies regardless of tree size.
//
// Snapshots are what the epoch-publishing concurrency layer in core hands to
// readers: any number of goroutines may use one Snapshot concurrently, since
// nothing mutates it after construction.
type Snapshot struct {
	cfg           Config
	a             arena
	nodeCount     int
	thSSE         float64
	inserts       int64
	compressions  int64
	removedNodes  int64
	childCapacity uint32
}

// Snapshot returns an immutable copy of the tree's current state. The
// receiver may continue to learn; the snapshot never changes.
func (t *Tree) Snapshot() *Snapshot {
	cfg := t.cfg
	cfg.Region = t.cfg.Region.Clone()
	return &Snapshot{
		cfg:           cfg,
		a:             t.a.clone(),
		nodeCount:     t.nodeCount,
		thSSE:         t.thSSE,
		inserts:       t.inserts,
		compressions:  t.compressions,
		removedNodes:  t.removedNodes,
		childCapacity: t.childCapacity,
	}
}

// Config returns the snapshot's effective configuration. Its MemoryLimit
// field is the live budget at snapshot time, after any Resize.
func (s *Snapshot) Config() Config { return s.cfg }

// MemoryLimit returns the live memory budget at snapshot time.
func (s *Snapshot) MemoryLimit() int { return s.cfg.MemoryLimit }

// NodeCount returns the number of nodes at snapshot time.
func (s *Snapshot) NodeCount() int { return s.nodeCount }

// MemoryUsed returns the memory the tree was charged at snapshot time.
func (s *Snapshot) MemoryUsed() int { return s.nodeCount * s.cfg.NodeBytes }

// Inserts returns the number of observations the tree had absorbed when the
// snapshot was taken.
func (s *Snapshot) Inserts() int64 { return s.inserts }

// Predict estimates the cost at query point p using the snapshot's default β.
func (s *Snapshot) Predict(p geom.Point) (value float64, ok bool) {
	return predictBeta(&s.a, s.cfg.Region, p, s.cfg.Beta)
}

// PredictBeta is the Fig. 3 prediction algorithm against the frozen tree.
func (s *Snapshot) PredictBeta(p geom.Point, beta int) (value float64, ok bool) {
	return predictBeta(&s.a, s.cfg.Region, p, beta)
}

// PredictEstimate is PredictBeta returning the full Estimate.
func (s *Snapshot) PredictEstimate(p geom.Point, beta int) (Estimate, bool) {
	return predictEstimate(&s.a, s.cfg.Region, p, beta)
}

// PredictDepth returns the prediction and the depth it was taken from.
func (s *Snapshot) PredictDepth(p geom.Point, beta int) (value float64, depth int, ok bool) {
	return predictDepth(&s.a, s.cfg.Region, p, beta)
}

// Walk visits every node depth-first, children in creation order, exactly
// like Tree.Walk.
func (s *Snapshot) Walk(fn func(Block) bool) {
	walkArena(&s.a, s.cfg, s.childCapacity, fn)
}

// WriteTo serializes the snapshot in the same frame format as Tree.WriteTo;
// a Tree decoded from it with Read reproduces the frozen state. Implements
// io.WriterTo and is safe to call concurrently.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	return writeArena(w, &s.a, s.cfg, s.thSSE, s.inserts, s.compressions, s.removedNodes)
}
