package quadtree

import (
	"fmt"
	"io"
	"strings"

	"mlq/internal/geom"
)

// Block is the read-only view of one node handed to Walk callbacks.
type Block struct {
	// Region is the hyper-rectangle the node indexes.
	Region geom.Rect
	// Depth is the node's depth (root is 0).
	Depth int
	// Sum, SumSquares and Count are the node's summary information.
	Sum, SumSquares float64
	Count           int64
	// Children is the number of non-empty children.
	Children int
	// Full reports whether the node has all 2^d children (a "full node"
	// in the paper's terminology; non-full nodes contribute to TSSENC).
	Full bool
}

// Avg returns the block's average value (Eq. 3).
func (b Block) Avg() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// SSE returns the block's sum of squared errors (Eq. 4).
func (b Block) SSE() float64 {
	if b.Count == 0 {
		return 0
	}
	v := b.SumSquares - b.Sum*b.Sum/float64(b.Count)
	if v < 0 {
		return 0
	}
	return v
}

// Walk visits every node in depth-first order, parents before children and
// children in creation order. The callback returns false to stop the walk
// early.
func (t *Tree) Walk(fn func(Block) bool) {
	walkArena(&t.a, t.cfg, t.childCapacity, fn)
}

// walkArena is the shared traversal behind Tree.Walk and Snapshot.Walk. It
// allocates its creation-order views per node instead of using tree-owned
// scratch, so callbacks may re-enter the tree and snapshots may be walked
// concurrently.
func walkArena(a *arena, cfg Config, childCapacity uint32, fn func(Block) bool) {
	var rec func(n int32, region geom.Rect, depth int) bool
	rec = func(n int32, region geom.Rect, depth int) bool {
		nd := a.nodes[n]
		b := Block{
			Region:     region,
			Depth:      depth,
			Sum:        nd.sum,
			SumSquares: nd.ss,
			Count:      nd.count,
			Children:   int(nd.kidLen),
			Full:       uint32(nd.kidLen) == childCapacity,
		}
		if !fn(b) {
			return false
		}
		for _, c := range a.creationOrder(n, nil) {
			if !rec(c.ref, region.Child(c.idx), depth+1) {
				return false
			}
		}
		return true
	}
	rec(0, cfg.Region, 0)
}

// ssenc returns SSENC(b) (Eq. 5): the sum of squared deviations, from b's
// own average, of the points in b that do not map into any of b's children.
// It is derived purely from summaries:
//
//	SSENC(b) = SS_nc − 2·AVG(b)·S_nc + C_nc·AVG(b)²
//
// where the _nc aggregates are b's minus the sum of its children's, summed
// in creation order so the floating-point result matches the pointer-linked
// implementation to the last bit.
func ssenc(a *arena, n int32, scratch []kidRef) (float64, []kidRef) {
	nd := a.nodes[n]
	if nd.count == 0 {
		return 0, scratch
	}
	sNC, ssNC := nd.sum, nd.ss
	cNC := nd.count
	base := len(scratch)
	scratch = a.creationOrder(n, scratch)
	for _, c := range scratch[base:] {
		cn := a.nodes[c.ref]
		sNC -= cn.sum
		ssNC -= cn.ss
		cNC -= cn.count
	}
	scratch = scratch[:base]
	avg := a.avg(n)
	v := ssNC - 2*avg*sNC + float64(cNC)*avg*avg
	if v < 0 {
		return 0, scratch
	}
	return v, scratch
}

// TSSENC returns the tree's total SSENC over non-full nodes (Eq. 6), the
// quantity compression minimizes the increase of.
func (t *Tree) TSSENC() float64 {
	return tssenc(&t.a, t.childCapacity)
}

func tssenc(a *arena, childCapacity uint32) float64 {
	var total float64
	var scratch []kidRef
	var rec func(n int32)
	rec = func(n int32) {
		nd := a.nodes[n]
		if uint32(nd.kidLen) != childCapacity {
			var v float64
			v, scratch = ssenc(a, n, scratch)
			total += v
		}
		base := len(scratch)
		scratch = a.creationOrder(n, scratch)
		order := append([]kidRef(nil), scratch[base:]...)
		scratch = scratch[:base]
		for _, c := range order {
			rec(c.ref)
		}
	}
	rec(0)
	return total
}

// Stats summarizes the tree's current shape.
type Stats struct {
	Nodes           int
	Leaves          int
	MaxDepth        int
	MemoryBytes     int
	MemoryLimit     int // live budget at stats time (moves with Resize)
	Inserts         int64
	EagerInserts    int64
	DeferredInserts int64
	Compressions    int64
	RemovedNodes    int64
	Resizes         int64
	SSEGQueueDepth  int
	TSSENC          float64
}

// Stats returns a snapshot of the tree's shape and lifetime counters.
func (t *Tree) Stats() Stats {
	s := Stats{
		Nodes:           t.nodeCount,
		MemoryBytes:     t.MemoryUsed(),
		MemoryLimit:     t.MemoryLimit(),
		Inserts:         t.inserts,
		EagerInserts:    t.eagerInserts,
		DeferredInserts: t.deferredInserts,
		Compressions:    t.compressions,
		RemovedNodes:    t.removedNodes,
		Resizes:         t.resizes,
		SSEGQueueDepth:  t.ssegQueueDepth,
		TSSENC:          t.TSSENC(),
	}
	t.Walk(func(b Block) bool {
		if b.Children == 0 {
			s.Leaves++
		}
		if b.Depth > s.MaxDepth {
			s.MaxDepth = b.Depth
		}
		return true
	})
	return s
}

// Validate checks the structural invariants of the tree — the paper's
// summary invariants and the arena layout invariants — and returns the
// first violation found, or nil. It is used heavily by the property tests
// and is cheap enough to run in production assertions.
func (t *Tree) Validate() error {
	if len(t.a.nodes) == 0 {
		return fmt.Errorf("empty arena")
	}
	if t.a.nodes[0].parent != noParent {
		return fmt.Errorf("root has a parent")
	}
	if len(t.a.nodes) != t.nodeCount {
		return fmt.Errorf("arena has %d slots but %d nodes are tracked (uncompacted garbage outside compress)", len(t.a.nodes), t.nodeCount)
	}
	count := 0
	var rec func(n int32, depth int) error
	rec = func(n int32, depth int) error {
		count++
		nd := t.a.nodes[n]
		if depth > t.cfg.MaxDepth {
			return fmt.Errorf("node at depth %d exceeds MaxDepth %d", depth, t.cfg.MaxDepth)
		}
		if nd.parent == deadParent {
			return fmt.Errorf("dead slot %d reachable at depth %d", n, depth)
		}
		if nd.count < 0 {
			return fmt.Errorf("negative count %d at depth %d", nd.count, depth)
		}
		if t.a.sse(n) < 0 {
			return fmt.Errorf("negative SSE at depth %d", depth)
		}
		if nd.kidOff < 0 || nd.kidLen < 0 || int(nd.kidOff)+int(nd.kidLen) > len(t.a.kids) {
			return fmt.Errorf("span [%d,%d) of slot %d out of kids bounds %d", nd.kidOff, nd.kidOff+nd.kidLen, n, len(t.a.kids))
		}
		span := t.a.span(n)
		var childCount int64
		var childSS float64
		for i, c := range span {
			if c.idx >= t.childCapacity {
				return fmt.Errorf("child index %d out of range (capacity %d)", c.idx, t.childCapacity)
			}
			if i > 0 && span[i-1].idx >= c.idx {
				return fmt.Errorf("span of slot %d not strictly sorted by quadrant index at position %d", n, i)
			}
			if c.ref <= 0 || int(c.ref) >= len(t.a.nodes) {
				return fmt.Errorf("child ref %d of slot %d out of arena bounds", c.ref, n)
			}
			cn := t.a.nodes[c.ref]
			if cn.parent != n {
				return fmt.Errorf("broken parent link at depth %d child %d", depth, c.idx)
			}
			if cn.count == 0 {
				return fmt.Errorf("empty child node at depth %d child %d", depth+1, c.idx)
			}
			childCount += cn.count
			childSS += cn.ss
			if err := rec(c.ref, depth+1); err != nil {
				return err
			}
		}
		if childCount > nd.count {
			return fmt.Errorf("children count %d exceeds parent count %d at depth %d", childCount, nd.count, depth)
		}
		if childSS > nd.ss*(1+1e-9)+1e-9 {
			return fmt.Errorf("children sum-of-squares %g exceeds parent %g at depth %d", childSS, nd.ss, depth)
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return err
	}
	if count != t.nodeCount {
		return fmt.Errorf("node count mismatch: counted %d, tracked %d", count, t.nodeCount)
	}
	// The over-limit check compares against the live limit, not the
	// construction-time one: a Resize shrink mid-workload moves the budget
	// and compresses, and must not read as an invariant violation.
	if t.inserts > 0 && t.MemoryUsed() > t.MemoryLimit() && t.nodeCount > 1 {
		return fmt.Errorf("memory %d over live limit %d after insert", t.MemoryUsed(), t.MemoryLimit())
	}
	return nil
}

// Clone returns a deep copy of the tree: two slice copies, regardless of
// size. An optimizer can snapshot a model under a brief lock and keep
// predicting from the copy while the original continues to learn — or use
// Snapshot, which returns an immutable view sharing the same cost.
func (t *Tree) Clone() *Tree {
	// The clone deliberately does not inherit t.tel: two trees publishing
	// into one set of gauges would interleave meaninglessly. Instrument the
	// clone separately if it should be observable.
	clone := &Tree{
		cfg:             t.cfg,
		a:               t.a.clone(),
		nodeCount:       t.nodeCount,
		thSSE:           t.thSSE,
		inserts:         t.inserts,
		eagerInserts:    t.eagerInserts,
		deferredInserts: t.deferredInserts,
		compressions:    t.compressions,
		removedNodes:    t.removedNodes,
		resizes:         t.resizes,
		ssegQueueDepth:  t.ssegQueueDepth,
		compressTime:    t.compressTime,
		childCapacity:   t.childCapacity,
	}
	clone.cfg.Region = t.cfg.Region.Clone()
	return clone
}

// Dump writes an indented ASCII rendering of the tree to w, one node per
// line with its depth, region, count and average. Intended for debugging and
// the mlqtool CLI.
func (t *Tree) Dump(w io.Writer) {
	t.Walk(func(b Block) bool {
		fmt.Fprintf(w, "%s%s count=%d avg=%.4g sse=%.4g\n",
			strings.Repeat("  ", b.Depth), b.Region, b.Count, b.Avg(), b.SSE())
		return true
	})
}
