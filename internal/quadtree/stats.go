package quadtree

import (
	"fmt"
	"io"
	"strings"

	"mlq/internal/geom"
)

// Block is the read-only view of one node handed to Walk callbacks.
type Block struct {
	// Region is the hyper-rectangle the node indexes.
	Region geom.Rect
	// Depth is the node's depth (root is 0).
	Depth int
	// Sum, SumSquares and Count are the node's summary information.
	Sum, SumSquares float64
	Count           int64
	// Children is the number of non-empty children.
	Children int
	// Full reports whether the node has all 2^d children (a "full node"
	// in the paper's terminology; non-full nodes contribute to TSSENC).
	Full bool
}

// Avg returns the block's average value (Eq. 3).
func (b Block) Avg() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// SSE returns the block's sum of squared errors (Eq. 4).
func (b Block) SSE() float64 {
	if b.Count == 0 {
		return 0
	}
	v := b.SumSquares - b.Sum*b.Sum/float64(b.Count)
	if v < 0 {
		return 0
	}
	return v
}

// Walk visits every node in depth-first order, parents before children.
// The callback returns false to stop the walk early.
func (t *Tree) Walk(fn func(Block) bool) {
	var rec func(n *node, region geom.Rect, depth int) bool
	rec = func(n *node, region geom.Rect, depth int) bool {
		b := Block{
			Region:     region,
			Depth:      depth,
			Sum:        n.sum,
			SumSquares: n.ss,
			Count:      n.count,
			Children:   len(n.kids),
			Full:       uint32(len(n.kids)) == t.childCapacity,
		}
		if !fn(b) {
			return false
		}
		for _, c := range n.kids {
			if !rec(c.n, region.Child(c.idx), depth+1) {
				return false
			}
		}
		return true
	}
	rec(t.root, t.cfg.Region, 0)
}

// ssenc returns SSENC(b) (Eq. 5): the sum of squared deviations, from b's
// own average, of the points in b that do not map into any of b's children.
// It is derived purely from summaries:
//
//	SSENC(b) = SS_nc − 2·AVG(b)·S_nc + C_nc·AVG(b)²
//
// where the _nc aggregates are b's minus the sum of its children's.
func (n *node) ssenc() float64 {
	if n.count == 0 {
		return 0
	}
	sNC, ssNC := n.sum, n.ss
	cNC := n.count
	for _, c := range n.kids {
		sNC -= c.n.sum
		ssNC -= c.n.ss
		cNC -= c.n.count
	}
	avg := n.avg()
	v := ssNC - 2*avg*sNC + float64(cNC)*avg*avg
	if v < 0 {
		return 0
	}
	return v
}

// TSSENC returns the tree's total SSENC over non-full nodes (Eq. 6), the
// quantity compression minimizes the increase of.
func (t *Tree) TSSENC() float64 {
	var total float64
	var rec func(n *node)
	rec = func(n *node) {
		if uint32(len(n.kids)) != t.childCapacity {
			total += n.ssenc()
		}
		for _, c := range n.kids {
			rec(c.n)
		}
	}
	rec(t.root)
	return total
}

// Stats summarizes the tree's current shape.
type Stats struct {
	Nodes           int
	Leaves          int
	MaxDepth        int
	MemoryBytes     int
	Inserts         int64
	EagerInserts    int64
	DeferredInserts int64
	Compressions    int64
	RemovedNodes    int64
	SSEGQueueDepth  int
	TSSENC          float64
}

// Stats returns a snapshot of the tree's shape and lifetime counters.
func (t *Tree) Stats() Stats {
	s := Stats{
		Nodes:           t.nodeCount,
		MemoryBytes:     t.MemoryUsed(),
		Inserts:         t.inserts,
		EagerInserts:    t.eagerInserts,
		DeferredInserts: t.deferredInserts,
		Compressions:    t.compressions,
		RemovedNodes:    t.removedNodes,
		SSEGQueueDepth:  t.ssegQueueDepth,
		TSSENC:          t.TSSENC(),
	}
	t.Walk(func(b Block) bool {
		if b.Children == 0 {
			s.Leaves++
		}
		if b.Depth > s.MaxDepth {
			s.MaxDepth = b.Depth
		}
		return true
	})
	return s
}

// Validate checks the structural invariants of the tree and returns the
// first violation found, or nil. It is used heavily by the property tests
// and is cheap enough to run in production assertions.
func (t *Tree) Validate() error {
	count := 0
	var rec func(n *node, depth int) error
	rec = func(n *node, depth int) error {
		count++
		if depth > t.cfg.MaxDepth {
			return fmt.Errorf("node at depth %d exceeds MaxDepth %d", depth, t.cfg.MaxDepth)
		}
		if n.count < 0 {
			return fmt.Errorf("negative count %d at depth %d", n.count, depth)
		}
		if n.sse() < 0 {
			return fmt.Errorf("negative SSE at depth %d", depth)
		}
		seen := make(map[uint32]bool, len(n.kids))
		var childCount int64
		var childSS float64
		for _, c := range n.kids {
			if c.idx >= t.childCapacity {
				return fmt.Errorf("child index %d out of range (capacity %d)", c.idx, t.childCapacity)
			}
			if seen[c.idx] {
				return fmt.Errorf("duplicate child index %d at depth %d", c.idx, depth)
			}
			seen[c.idx] = true
			if c.n.parent != n {
				return fmt.Errorf("broken parent pointer at depth %d child %d", depth, c.idx)
			}
			if c.n.count == 0 {
				return fmt.Errorf("empty child node at depth %d child %d", depth+1, c.idx)
			}
			childCount += c.n.count
			childSS += c.n.ss
			if err := rec(c.n, depth+1); err != nil {
				return err
			}
		}
		if childCount > n.count {
			return fmt.Errorf("children count %d exceeds parent count %d at depth %d", childCount, n.count, depth)
		}
		if childSS > n.ss*(1+1e-9)+1e-9 {
			return fmt.Errorf("children sum-of-squares %g exceeds parent %g at depth %d", childSS, n.ss, depth)
		}
		return nil
	}
	if t.root.parent != nil {
		return fmt.Errorf("root has a parent")
	}
	if err := rec(t.root, 0); err != nil {
		return err
	}
	if count != t.nodeCount {
		return fmt.Errorf("node count mismatch: counted %d, tracked %d", count, t.nodeCount)
	}
	if t.inserts > 0 && t.MemoryUsed() > t.cfg.MemoryLimit && t.nodeCount > 1 {
		return fmt.Errorf("memory %d over limit %d after insert", t.MemoryUsed(), t.cfg.MemoryLimit)
	}
	return nil
}

// Clone returns a deep copy of the tree. An optimizer can snapshot a model
// under a brief lock and keep predicting from the copy while the original
// continues to learn.
func (t *Tree) Clone() *Tree {
	var rec func(n *node, parent *node) *node
	rec = func(n *node, parent *node) *node {
		c := &node{sum: n.sum, ss: n.ss, count: n.count, parent: parent}
		if len(n.kids) > 0 {
			c.kids = make([]childEntry, len(n.kids))
			for i, k := range n.kids {
				c.kids[i] = childEntry{idx: k.idx, n: rec(k.n, c)}
			}
		}
		return c
	}
	// The clone deliberately does not inherit t.tel: two trees publishing
	// into one set of gauges would interleave meaninglessly. Instrument the
	// clone separately if it should be observable.
	clone := &Tree{
		cfg:             t.cfg,
		root:            rec(t.root, nil),
		nodeCount:       t.nodeCount,
		thSSE:           t.thSSE,
		inserts:         t.inserts,
		eagerInserts:    t.eagerInserts,
		deferredInserts: t.deferredInserts,
		compressions:    t.compressions,
		removedNodes:    t.removedNodes,
		ssegQueueDepth:  t.ssegQueueDepth,
		compressTime:    t.compressTime,
		childCapacity:   t.childCapacity,
	}
	clone.cfg.Region = t.cfg.Region.Clone()
	return clone
}

// Dump writes an indented ASCII rendering of the tree to w, one node per
// line with its depth, region, count and average. Intended for debugging and
// the mlqtool CLI.
func (t *Tree) Dump(w io.Writer) {
	t.Walk(func(b Block) bool {
		fmt.Fprintf(w, "%s%s count=%d avg=%.4g sse=%.4g\n",
			strings.Repeat("  ", b.Depth), b.Region, b.Count, b.Avg(), b.SSE())
		return true
	})
}
