package quadtree

import (
	"time"

	"mlq/internal/telemetry"
)

// treeTelemetry mirrors a tree's shape and lifetime counters into a
// telemetry registry. The tree publishes after every Insert and compression
// from its owning goroutine; scrapes read the atomic metric values without
// ever touching the (not concurrency-safe) tree itself.
type treeTelemetry struct {
	nodes       *telemetry.Gauge
	memBytes    *telemetry.Gauge
	memLimit    *telemetry.Gauge
	utilization *telemetry.Gauge
	threshold   *telemetry.Gauge
	ssegQueue   *telemetry.Gauge

	inserts      *telemetry.Counter
	eager        *telemetry.Counter
	deferred     *telemetry.Counter
	compressions *telemetry.Counter
	removed      *telemetry.Counter
	resizes      *telemetry.Counter

	tracer *telemetry.Tracer
	labels []telemetry.Label
}

// Instrument registers the tree's metrics under mlq_quadtree_* with the
// given labels (typically model="WIN") and begins publishing them on every
// insert and compression. A non-nil tracer additionally records each
// compression pass as a "compress" span. Passing a nil registry and nil
// tracer detaches the tree from telemetry again.
//
// Predictions are deliberately uninstrumented: the Predict hot path carries
// no telemetry cost at all (the engine layer counts predictions per
// predicate instead).
func (t *Tree) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer, labels ...telemetry.Label) {
	if reg == nil && tr == nil {
		t.tel = nil
		return
	}
	tel := &treeTelemetry{
		nodes:       reg.Gauge("mlq_quadtree_nodes", "current node count including the root", labels...),
		memBytes:    reg.Gauge("mlq_quadtree_memory_bytes", "memory charged to the tree", labels...),
		memLimit:    reg.Gauge("mlq_quadtree_memory_limit_bytes", "live memory budget (moves with Resize)", labels...),
		utilization: reg.Gauge("mlq_quadtree_memory_utilization", "memory used / memory limit", labels...),
		threshold:   reg.Gauge("mlq_quadtree_threshold_sse", "current lazy partitioning threshold th_SSE (Eq. 7)", labels...),
		ssegQueue:   reg.Gauge("mlq_quadtree_sseg_queue_depth", "candidate-leaf queue size of the latest compression pass", labels...),

		inserts:      reg.Counter("mlq_quadtree_inserts_total", "data points inserted", labels...),
		eager:        reg.Counter("mlq_quadtree_eager_inserts_total", "inserts that partitioned down to max depth", labels...),
		deferred:     reg.Counter("mlq_quadtree_deferred_inserts_total", "inserts stopped early by the lazy SSE threshold", labels...),
		compressions: reg.Counter("mlq_quadtree_compressions_total", "compression passes run", labels...),
		removed:      reg.Counter("mlq_quadtree_removed_nodes_total", "nodes discarded by compression", labels...),
		resizes:      reg.Counter("mlq_quadtree_resizes_total", "live-limit changes applied by Resize", labels...),

		tracer: tr,
		labels: labels,
	}
	t.tel = tel
	tel.publish(t)
}

// publish pushes the tree's current state into the registered metrics. It
// must be called from the goroutine that owns the tree.
func (tel *treeTelemetry) publish(t *Tree) {
	tel.nodes.SetInt(int64(t.nodeCount))
	tel.memBytes.SetInt(int64(t.MemoryUsed()))
	tel.memLimit.SetInt(int64(t.cfg.MemoryLimit))
	if t.cfg.MemoryLimit > 0 {
		tel.utilization.Set(float64(t.MemoryUsed()) / float64(t.cfg.MemoryLimit))
	}
	tel.threshold.Set(t.Threshold())
	tel.ssegQueue.SetInt(int64(t.ssegQueueDepth))

	tel.inserts.Store(t.inserts)
	tel.eager.Store(t.eagerInserts)
	tel.deferred.Store(t.deferredInserts)
	tel.compressions.Store(t.compressions)
	tel.removed.Store(t.removedNodes)
	tel.resizes.Store(t.resizes)
}

// compressDone publishes after a compression pass and records it as a span.
func (tel *treeTelemetry) compressDone(t *Tree, d time.Duration) {
	tel.publish(t)
	tel.tracer.ObserveSpan("compress", d, tel.labels...)
}
