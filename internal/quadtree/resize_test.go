package quadtree

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mlq/internal/geom"
)

func insertStream(t *testing.T, tr *Tree, seed int64, n int) {
	t.Helper()
	region := tr.Config().Region
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := make(geom.Point, region.Dims())
		for d := range p {
			p[d] = region.Lo[d] + rng.Float64()*(region.Hi[d]-region.Lo[d])
		}
		if err := tr.Insert(p, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
	}
}

func TestResizeFloor(t *testing.T) {
	tr := mustTree(t, Config{Region: geom.UnitCube(2), MemoryLimit: 40 * DefaultNodeBytes})
	if err := tr.Resize(DefaultNodeBytes - 1); err == nil {
		t.Error("Resize below one node accepted, want error")
	}
	if err := tr.Resize(DefaultNodeBytes); err != nil {
		t.Errorf("Resize to exactly one node rejected: %v", err)
	}
}

func TestResizeToCurrentIsBitIdenticalNoop(t *testing.T) {
	tr := buildTrained(t, 43)
	before := tr.Stats()
	var b1 bytes.Buffer
	if _, err := tr.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resize(tr.MemoryLimit()); err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if _, err := tr.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("Resize to the current limit changed the serialized form")
	}
	if !reflect.DeepEqual(before, tr.Stats()) {
		t.Errorf("Resize to the current limit moved counters: %+v -> %+v", before, tr.Stats())
	}
}

func TestResizeShrinkProperties(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tr := mustTree(t, Config{
			Region:      geom.UnitCube(2),
			MaxDepth:    6,
			MemoryLimit: 200 * DefaultNodeBytes,
		})
		insertStream(t, tr, seed, 800)
		rng := rand.New(rand.NewSource(seed * 77))
		limit := tr.MemoryLimit()
		for step := 0; step < 6; step++ {
			limit = DefaultNodeBytes + rng.Intn(limit)
			if err := tr.Resize(limit); err != nil {
				t.Fatalf("seed %d: Resize(%d): %v", seed, limit, err)
			}
			if tr.MemoryUsed() > limit {
				t.Fatalf("seed %d: memory %d over shrunk limit %d", seed, tr.MemoryUsed(), limit)
			}
			if tr.NodeCount() < 1 {
				t.Fatalf("seed %d: root evicted by shrink", seed)
			}
			if tr.MemoryLimit() != limit || tr.Stats().MemoryLimit != limit {
				t.Fatalf("seed %d: live limit not tracked: %d/%d want %d",
					seed, tr.MemoryLimit(), tr.Stats().MemoryLimit, limit)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("seed %d after shrink to %d: %v", seed, limit, err)
			}
		}
		if tr.Resizes() == 0 {
			t.Fatalf("seed %d: resize counter never moved", seed)
		}
	}
}

func TestResizeGrowThenShrink(t *testing.T) {
	tr := mustTree(t, Config{
		Region:      geom.UnitCube(2),
		MaxDepth:    6,
		MemoryLimit: 40 * DefaultNodeBytes,
	})
	insertStream(t, tr, 7, 500)
	grown := 400 * DefaultNodeBytes
	if err := tr.Resize(grown); err != nil {
		t.Fatal(err)
	}
	// Growing alone must not build nodes; the ceiling just rises.
	if used := tr.MemoryUsed(); used > 40*DefaultNodeBytes {
		t.Errorf("grow alone changed memory use to %d", used)
	}
	insertStream(t, tr, 8, 500)
	if tr.MemoryUsed() <= 40*DefaultNodeBytes {
		t.Error("inserts after grow never used the new headroom")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after grow: %v", err)
	}
	if err := tr.Resize(40 * DefaultNodeBytes); err != nil {
		t.Fatal(err)
	}
	if tr.MemoryUsed() > 40*DefaultNodeBytes {
		t.Errorf("memory %d over re-shrunk limit", tr.MemoryUsed())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after grow-then-shrink: %v", err)
	}
}

// TestValidateTracksLiveLimit is the regression for the old invariant check
// that compared against the construction-time cfg.MemoryLimit: a shrink
// mid-workload must not read as an over-limit violation on later inserts.
func TestValidateTracksLiveLimit(t *testing.T) {
	tr := mustTree(t, Config{
		Region:      geom.UnitCube(2),
		MaxDepth:    6,
		MemoryLimit: 300 * DefaultNodeBytes,
	})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1200; i++ {
		if i == 600 {
			if err := tr.Resize(60 * DefaultNodeBytes); err != nil {
				t.Fatal(err)
			}
		}
		p := geom.Point{rng.Float64(), rng.Float64()}
		if err := tr.Insert(p, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Stats().MemoryLimit != 60*DefaultNodeBytes {
		t.Errorf("stats limit %d, want live 60 nodes", tr.Stats().MemoryLimit)
	}
}

// TestResizeSerializeRoundTrip checks the golden property: a resized tree
// serializes with its live limit, decodes to an identical tree, and from
// then on evolves bit-for-bit like the original — indistinguishable from a
// tree freshly built at that limit as far as the frame header and every
// invariant are concerned.
func TestResizeSerializeRoundTrip(t *testing.T) {
	tr := buildTrained(t, 47)
	newLimit := 30 * DefaultNodeBytes
	if err := tr.Resize(newLimit); err != nil {
		t.Fatal(err)
	}

	var b1 bytes.Buffer
	if _, err := tr.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.MemoryLimit() != newLimit {
		t.Errorf("decoded limit %d, want live %d", got.MemoryLimit(), newLimit)
	}
	var b2 bytes.Buffer
	if _, err := got.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("resized tree does not round-trip bit-identically")
	}

	// A freshly-built tree at the same limit must carry the same effective
	// configuration the decoded resized tree reports.
	fresh := mustTree(t, Config{
		Region:      tr.Config().Region,
		Strategy:    tr.Config().Strategy,
		MaxDepth:    tr.Config().MaxDepth,
		MemoryLimit: newLimit,
	})
	if fresh.Config().MemoryLimit != got.Config().MemoryLimit {
		t.Error("fresh tree at the live limit disagrees with the decoded one")
	}

	// The decoded copy and the original must evolve identically.
	insertStream(t, tr, 99, 400)
	insertStream(t, got, 99, 400)
	var da, db strings.Builder
	tr.Dump(&da)
	got.Dump(&db)
	if da.String() != db.String() {
		t.Error("original and decoded resized trees diverged on identical inserts")
	}
}

func TestMarginalEconomics(t *testing.T) {
	empty := mustTree(t, unitCfg(2))
	if _, _, ok := empty.MarginalSSEG(); ok {
		t.Error("root-only tree reported a removable leaf")
	}
	if loss := empty.ShrinkLoss(10 * DefaultNodeBytes); loss != 0 {
		t.Errorf("root-only shrink loss %g, want 0", loss)
	}

	tr := buildTrained(t, 51)
	sseg, count, ok := tr.MarginalSSEG()
	if !ok || sseg < 0 || count < 1 {
		t.Fatalf("marginal leaf sseg=%g count=%d ok=%v", sseg, count, ok)
	}
	if tr.ShrinkLoss(0) != 0 {
		t.Error("zero-byte shrink has non-zero loss")
	}
	small := tr.ShrinkLoss(DefaultNodeBytes)
	large := tr.ShrinkLoss(20 * DefaultNodeBytes)
	if small < 0 || large < small {
		t.Errorf("shrink loss not monotone: %g then %g", small, large)
	}
	snap := tr.Snapshot()
	if s2, c2, ok2 := snap.MarginalSSEG(); s2 != sseg || c2 != count || ok2 != ok {
		t.Error("snapshot marginal leaf differs from tree's")
	}
	if snap.ShrinkLoss(20*DefaultNodeBytes) != large {
		t.Error("snapshot shrink loss differs from tree's")
	}
	if snap.MemoryLimit() != tr.MemoryLimit() {
		t.Error("snapshot limit differs from tree's live limit")
	}
}
