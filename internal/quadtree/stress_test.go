package quadtree

import (
	"math/rand"
	"strings"
	"testing"

	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
)

// TestRandomizedOperationStress interleaves inserts, predictions, explicit
// compressions and clones over random configurations and verifies every
// structural invariant after each phase. This is the package's fuzz-style
// safety net: any violation of the §4 invariants under any operation order
// trips Validate.
func TestRandomizedOperationStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		d := 1 + rng.Intn(4)
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for i := 0; i < d; i++ {
			lo[i] = rng.Float64()*10 - 5
			hi[i] = lo[i] + 1 + rng.Float64()*100
		}
		strat := Eager
		if rng.Intn(2) == 1 {
			strat = Lazy
		}
		cfg := Config{
			Region:      geomtest.MustRect(lo, hi),
			Strategy:    strat,
			Policy:      CompressionPolicy(rng.Intn(3)),
			MaxDepth:    1 + rng.Intn(7),
			Alpha:       0.01 + rng.Float64()*0.5,
			Beta:        1 + rng.Intn(10),
			Gamma:       0.001 + rng.Float64()*0.3,
			MemoryLimit: (2 + rng.Intn(200)) * DefaultNodeBytes,
		}
		tr := mustTree(t, cfg)
		ops := 500 + rng.Intn(1500)
		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0:
				tr.Compress()
			case 1:
				p := make(geom.Point, d)
				for i := range p {
					// Deliberately out of range half the time.
					p[i] = lo[i] + (rng.Float64()*3-1)*(hi[i]-lo[i])
				}
				tr.PredictBeta(p, 1+rng.Intn(12))
			default:
				p := make(geom.Point, d)
				for i := range p {
					p[i] = lo[i] + (rng.Float64()*3-1)*(hi[i]-lo[i])
				}
				if err := tr.Insert(p, rng.Float64()*1e4-5e3); err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
			}
			if tr.MemoryUsed() > cfg.MemoryLimit {
				t.Fatalf("trial %d op %d: memory %d over limit %d",
					trial, op, tr.MemoryUsed(), cfg.MemoryLimit)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		// Clone must be structurally identical and fully detached.
		cl := tr.Clone()
		if err := cl.Validate(); err != nil {
			t.Fatalf("trial %d: clone invalid: %v", trial, err)
		}
		var a, b strings.Builder
		tr.Dump(&a)
		cl.Dump(&b)
		if a.String() != b.String() {
			t.Fatalf("trial %d: clone structure differs", trial)
		}
		// Mutating the original must not touch the clone.
		snapshot := b.String()
		for i := 0; i < 200; i++ {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
			tr.Insert(p, rng.Float64()*100)
		}
		var c strings.Builder
		cl.Dump(&c)
		if c.String() != snapshot {
			t.Fatalf("trial %d: clone mutated by original's inserts", trial)
		}
		// And the clone keeps working independently.
		if err := cl.Insert(cl.cfg.Region.Center(), 1); err != nil {
			t.Fatalf("trial %d: clone insert: %v", trial, err)
		}
		if err := cl.Validate(); err != nil {
			t.Fatalf("trial %d: clone invalid after insert: %v", trial, err)
		}
	}
}

// TestSerializeFuzzNoPanics flips random bytes in a valid serialized tree
// and checks Read never panics (errors are fine).
func TestSerializeFuzzNoPanics(t *testing.T) {
	tr := buildTrained(t, 123)
	var buf strings.Builder
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := []byte(buf.String())
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 500; i++ {
		b := append([]byte(nil), good...)
		flips := 1 + rng.Intn(8)
		for f := 0; f < flips; f++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked on corrupted input (iteration %d): %v", i, r)
				}
			}()
			tree, err := Read(strings.NewReader(string(b)))
			if err == nil {
				// Rarely the corruption is benign; the decoded tree
				// must still validate (Read validates internally).
				if tree.Validate() != nil {
					t.Fatal("Read returned an invalid tree without error")
				}
			}
		}()
	}
}
