package quadtree

import (
	"math"

	"mlq/internal/geom"
)

// refModel is a brute-force oracle for the quadtree's summary math: it keeps
// every inserted point and recomputes block aggregates exactly. Property
// tests compare the tree's incremental summaries against it.
type refModel struct {
	region geom.Rect
	pts    []geom.Point
	vals   []float64
}

func newRef(region geom.Rect) *refModel {
	return &refModel{region: region.Clone()}
}

func (r *refModel) insert(p geom.Point, v float64) {
	r.pts = append(r.pts, r.region.Clamp(p))
	r.vals = append(r.vals, v)
}

// aggregates returns (sum, count, sumsquares) over the points inside block.
func (r *refModel) aggregates(block geom.Rect) (s float64, c int64, ss float64) {
	for i, p := range r.pts {
		if block.Contains(p) {
			s += r.vals[i]
			ss += r.vals[i] * r.vals[i]
			c++
		}
	}
	return s, c, ss
}

// sse returns the exact Σ(v−avg)² over points inside block.
func (r *refModel) sse(block geom.Rect) float64 {
	s, c, _ := r.aggregates(block)
	if c == 0 {
		return 0
	}
	avg := s / float64(c)
	var t float64
	for i, p := range r.pts {
		if block.Contains(p) {
			d := r.vals[i] - avg
			t += d * d
		}
	}
	return t
}

// ssenc returns the exact SSENC (Eq. 5): squared deviations from block's own
// average of points in block that are in none of the child blocks.
func (r *refModel) ssenc(block geom.Rect, children []geom.Rect) float64 {
	s, c, _ := r.aggregates(block)
	if c == 0 {
		return 0
	}
	avg := s / float64(c)
	var t float64
	for i, p := range r.pts {
		if !block.Contains(p) {
			continue
		}
		covered := false
		for _, ch := range children {
			if ch.Contains(p) {
				covered = true
				break
			}
		}
		if !covered {
			d := r.vals[i] - avg
			t += d * d
		}
	}
	return t
}

// predict mirrors Fig. 3 for an eager, uncompressed tree of max depth λ:
// the average of the deepest block on the query point's path holding at
// least beta points (falling back to the root average).
func (r *refModel) predict(p geom.Point, beta int, maxDepth int) (float64, bool) {
	if len(r.pts) == 0 {
		return 0, false
	}
	p = r.region.Clamp(p)
	block := r.region
	bestS, bestC, _ := r.aggregates(block)
	for d := 0; d < maxDepth; d++ {
		child := block.Child(block.ChildIndex(p))
		s, c, _ := r.aggregates(child)
		if c == 0 {
			break // the eager tree has no node here
		}
		if c >= int64(beta) {
			bestS, bestC = s, c
		}
		block = child
	}
	if bestC == 0 {
		return 0, true
	}
	return bestS / float64(bestC), true
}

func approxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol || diff <= tol*scale
}
