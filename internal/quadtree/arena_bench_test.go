package quadtree

import (
	"fmt"
	"math/rand"
	"testing"
)

// linearChild is the lookup the sorted spans replaced: a left-to-right scan
// of the parent's child entries. It exists only as the benchmark baseline.
func linearChild(a *arena, n int32, idx uint32) int32 {
	nd := &a.nodes[n]
	for _, k := range a.kids[nd.kidOff : nd.kidOff+nd.kidLen] {
		if k.idx == idx {
			return k.ref
		}
	}
	return -1
}

// spanArena builds a one-level arena whose root has width children with
// quadrant indices 0..width-1, inserted in random order so the sorted-insert
// path of addChild is exercised.
func spanArena(b *testing.B, width int) *arena {
	b.Helper()
	a := &arena{nodes: []node{{parent: noParent}}}
	perm := rand.New(rand.NewSource(int64(width))).Perm(width)
	for _, idx := range perm {
		a.addChild(0, uint32(idx))
	}
	if got := int(a.nodes[0].kidLen); got != width {
		b.Fatalf("built span of %d entries, want %d", got, width)
	}
	return a
}

// BenchmarkChildLookup compares the binary search over the sorted span
// against the linear scan it replaced, at the span widths a d-dimensional
// tree produces (2^d children: d=2..4 for the paper's workloads, 6 for the
// stress configs). The sorted order is maintained by addChild either way, so
// the comparison isolates pure lookup cost on the Predict descent.
func BenchmarkChildLookup(b *testing.B) {
	for _, width := range []int{4, 16, 64} {
		a := spanArena(b, width)
		// Probe indices cycle through hits at every position plus one miss.
		probes := make([]uint32, width+1)
		for i := 0; i < width; i++ {
			probes[i] = uint32(i)
		}
		probes[width] = uint32(width) // not present
		b.Run(fmt.Sprintf("binary-%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.child(0, probes[i%len(probes)])
			}
		})
		b.Run(fmt.Sprintf("linear-%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linearChild(a, 0, probes[i%len(probes)])
			}
		})
	}
}

// TestLinearChildAgrees pins the baseline used by BenchmarkChildLookup to
// the real lookup, so the benchmark always compares equivalent functions.
func TestLinearChildAgrees(t *testing.T) {
	a := &arena{nodes: []node{{parent: noParent}}}
	perm := rand.New(rand.NewSource(3)).Perm(16)
	for _, idx := range perm {
		a.addChild(0, uint32(idx))
	}
	for idx := uint32(0); idx < 18; idx++ {
		if got, want := linearChild(a, 0, idx), a.child(0, idx); got != want {
			t.Errorf("linearChild(%d) = %d, child = %d", idx, got, want)
		}
	}
}
