package faults

import (
	"testing"
	"time"
)

func TestPageReadDelayNilAndUnarmed(t *testing.T) {
	var nilInj *Injector
	if d := nilInj.PageReadDelay(); d != 0 {
		t.Fatalf("nil injector returned delay %v", d)
	}
	in := New(1)
	if d := in.PageReadDelay(); d != 0 {
		t.Fatalf("un-enabled site returned delay %v", d)
	}
	if s := in.Stats(PageLatency); s.Hits != 0 || s.Fired != 0 {
		t.Fatalf("un-enabled site recorded activity: %+v", s)
	}
}

func TestPageReadDelaySlowDisk(t *testing.T) {
	in := New(7)
	in.Enable(PageLatency, SiteConfig{Probability: 1, Delay: 5 * time.Millisecond})
	for i := 0; i < 10; i++ {
		if d := in.PageReadDelay(); d != 5*time.Millisecond {
			t.Fatalf("read %d: delay %v, want 5ms", i, d)
		}
	}
	if s := in.Stats(PageLatency); s.Hits != 10 || s.Fired != 10 {
		t.Fatalf("stats %+v, want 10 hits, 10 fired", s)
	}
}

func TestPageReadDelayScheduledStall(t *testing.T) {
	// A stall is a scheduled, rare, huge delay: only the listed hit is slow.
	in := New(7)
	in.Enable(PageLatency, SiteConfig{Schedule: []int64{3}, Delay: time.Second})
	var got []time.Duration
	for i := 0; i < 5; i++ {
		got = append(got, in.PageReadDelay())
	}
	for i, d := range got {
		want := time.Duration(0)
		if i == 2 {
			want = time.Second
		}
		if d != want {
			t.Fatalf("hit %d: delay %v, want %v", i+1, d, want)
		}
	}
}

func TestPageReadDelayJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		in := New(42)
		in.Enable(PageLatency, SiteConfig{Probability: 1, Delay: time.Millisecond, Jitter: time.Millisecond})
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = in.PageReadDelay()
		}
		return out
	}
	a, b := run(), run()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: same seed produced %v then %v", i, a[i], b[i])
		}
		if a[i] < time.Millisecond || a[i] > 2*time.Millisecond {
			t.Fatalf("hit %d: delay %v outside [Delay, Delay+Jitter]", i, a[i])
		}
		if a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced 20 identical delays")
	}
}

func TestPageReadDelayBurst(t *testing.T) {
	// A scheduled firing with Burst 4 keeps the next 3 consultations slow
	// too, with no probability enabled so nothing else fires.
	in := New(3)
	in.Enable(PageLatency, SiteConfig{Schedule: []int64{2}, Delay: time.Millisecond, Burst: 4})
	var slow int
	for i := 0; i < 10; i++ {
		if in.PageReadDelay() > 0 {
			slow++
			if i < 1 || i > 4 {
				t.Fatalf("consultation %d slow, want burst covering 2..5 only", i+1)
			}
		}
	}
	if slow != 4 {
		t.Fatalf("%d slow reads, want burst of 4", slow)
	}
	if s := in.Stats(PageLatency); s.Fired != 4 {
		t.Fatalf("fired %d, want 4", s.Fired)
	}
}
