// Package faults is a deterministic fault-injection substrate for chaos
// testing the self-tuning feedback loop. An Injector owns a set of named
// fault sites; each site fires either with a configured probability or on an
// explicit schedule of hit indices, driven by a single seeded random stream
// so every chaos run is reproducible. The package also supplies the concrete
// fault payloads the rest of the system is hardened against: corrupted
// observed costs (NaN/Inf/negative/outlier-scaled), injected UDF panics,
// failed or delayed page reads, and torn catalog writes (truncation or a
// silent bit flip at a chosen offset).
//
// A nil *Injector is valid everywhere and injects nothing, so production
// paths can keep the hooks wired permanently: when no injector is installed
// the fault points are fully transparent.
package faults

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Site names one fault point.
type Site string

// The fault sites wired through the system.
const (
	// ObserveCost corrupts an observed UDF execution cost before it is fed
	// back to a model.
	ObserveCost Site = "observe.cost"
	// UDFPanic panics inside a UDF execution.
	UDFPanic Site = "udf.panic"
	// PageRead fails (and optionally delays) a physical page read.
	PageRead Site = "page.read"
	// PageLatency slows a physical page read without failing it: the read
	// succeeds but is charged a modeled service delay — a flaky disk that
	// surfaces as latency instead of errors.
	PageLatency Site = "page.latency"
	// CatalogTear tears a catalog write: the stream is truncated mid-write
	// or has one bit flipped at a chosen offset.
	CatalogTear Site = "catalog.tear"
	// ReplicaDrop silently loses one replication stream message in flight —
	// the sender believes it was delivered (fire-and-forget streaming), the
	// follower discovers the gap and must catch up from the journal.
	ReplicaDrop Site = "replica.drop"
	// ReplicaDup delivers one replication stream message twice; followers
	// must deduplicate by sequence number or double-apply learning.
	ReplicaDup Site = "replica.dup"
	// ReplicaReorder holds one replication stream message back and delivers
	// it after its successor — adjacent-swap reordering, the building block
	// of arbitrary interleavings across repeated firings.
	ReplicaReorder Site = "replica.reorder"
	// NetReset severs a live network-transport connection mid-stream: the
	// socket is closed under the peer, modeling a connection reset. The
	// sender's reconnect/backoff loop re-establishes the link; whatever was
	// in flight is lost and journal catch-up repairs it.
	NetReset Site = "net.reset"
	// NetTrunc damages one network transfer: a read has one byte flipped
	// silently in flight, a write is torn to a prefix before the connection
	// dies. Either way the receiving decoder must discard the damaged frame
	// (CRC/length check) instead of yielding a message from it.
	NetTrunc Site = "net.trunc"
	// NetDelay stalls one network read by the site's configured Delay,
	// modeling a congested or lossy link. With Burst > 1 a firing keeps the
	// link slow for the following Burst-1 reads too.
	NetDelay Site = "net.delay"
)

// SiteConfig controls when a site fires.
type SiteConfig struct {
	// Probability fires the site independently on each hit.
	Probability float64
	// Schedule lists 1-based hit indices that always fire, in addition to
	// the probabilistic draws. A schedule with Probability 0 gives fully
	// deterministic fault placement.
	Schedule []int64
	// Delay is slept before a PageRead fault surfaces, simulating a stalled
	// disk. For PageLatency it is the base modeled delay of one slow read
	// (returned, never slept — the latency model uses virtual time so runs
	// stay deterministic and fast). Ignored by the other sites.
	Delay time.Duration
	// Jitter widens a PageLatency delay by a uniform draw in [0, Jitter],
	// taken from the injector's seeded stream. Ignored by the other sites.
	Jitter time.Duration
	// Burst makes a fired PageLatency site stay hot for the next Burst-1
	// consultations too, modeling a disk that goes slow for a stretch of
	// consecutive reads rather than independently per read. Ignored by the
	// other sites.
	Burst int
}

// SiteStats reports one site's activity.
type SiteStats struct {
	// Hits counts how many times the site was consulted.
	Hits int64
	// Fired counts how many times it injected a fault.
	Fired int64
}

type siteState struct {
	cfg       SiteConfig
	schedule  map[int64]bool
	hits      int64
	fired     int64
	burstLeft int // remaining forced firings of an in-progress latency burst
}

// Injector is a seeded fault injector. It is safe for concurrent use. The
// zero value is not usable; construct with New. A nil *Injector never fires.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[Site]*siteState
}

// New returns an injector with no sites enabled, all randomness derived from
// seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		sites: make(map[Site]*siteState),
	}
}

// Enable configures a site. Re-enabling a site replaces its configuration
// and resets its counters.
func (in *Injector) Enable(site Site, cfg SiteConfig) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := &siteState{cfg: cfg}
	if len(cfg.Schedule) > 0 {
		st.schedule = make(map[int64]bool, len(cfg.Schedule))
		for _, h := range cfg.Schedule {
			st.schedule[h] = true
		}
	}
	in.sites[site] = st
}

// Fire consults a site: it records the hit and reports whether a fault must
// be injected. A nil injector or an un-enabled site never fires.
func (in *Injector) Fire(site Site) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fireLocked(site)
}

func (in *Injector) fireLocked(site Site) bool {
	st, ok := in.sites[site]
	if !ok {
		return false
	}
	st.hits++
	fire := st.schedule[st.hits]
	if !fire && st.cfg.Probability > 0 && in.rng.Float64() < st.cfg.Probability {
		fire = true
	}
	if fire {
		st.fired++
	}
	return fire
}

// Stats returns a site's counters. Zero for nil injectors and unknown sites.
func (in *Injector) Stats(site Site) SiteStats {
	if in == nil {
		return SiteStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[site]
	if !ok {
		return SiteStats{}
	}
	return SiteStats{Hits: st.hits, Fired: st.fired}
}

// CorruptionKind names one way an observed cost can be corrupted.
type CorruptionKind int

// The four cost corruptions of the chaos model, mirroring what a buggy UDF
// or a torn measurement can report.
const (
	CorruptNaN CorruptionKind = iota
	CorruptInf
	CorruptNegative
	CorruptOutlier
	numCorruptionKinds
)

// String names the corruption.
func (k CorruptionKind) String() string {
	switch k {
	case CorruptNaN:
		return "nan"
	case CorruptInf:
		return "inf"
	case CorruptNegative:
		return "negative"
	case CorruptOutlier:
		return "outlier"
	default:
		return fmt.Sprintf("CorruptionKind(%d)", int(k))
	}
}

// apply produces the corrupted value.
func (k CorruptionKind) apply(cost float64) float64 {
	switch k {
	case CorruptNaN:
		return math.NaN()
	case CorruptInf:
		return math.Inf(1)
	case CorruptNegative:
		return -1 - math.Abs(cost)
	default: // CorruptOutlier: plausible-looking but 10^4 off.
		return (math.Abs(cost) + 1) * 1e4
	}
}

// MaybeCorruptCost consults the ObserveCost site and, when it fires, returns
// a corrupted version of cost (NaN, +Inf, a negative value, or an
// outlier-scaled value, cycling deterministically). The second return
// reports whether corruption happened.
func (in *Injector) MaybeCorruptCost(cost float64) (float64, bool) {
	if in == nil {
		return cost, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.fireLocked(ObserveCost) {
		return cost, false
	}
	st := in.sites[ObserveCost]
	kind := CorruptionKind((st.fired - 1) % int64(numCorruptionKinds))
	return kind.apply(cost), true
}

// PageReadError consults the PageRead site: nil when the read should
// proceed, an injected error (after any configured Delay) when it must fail.
// Wire it into pagestore.Store.SetReadFault.
func (in *Injector) PageReadError() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st, ok := in.sites[PageRead]
	fire := ok && in.fireLocked(PageRead)
	var delay time.Duration
	if fire {
		delay = st.cfg.Delay
	}
	in.mu.Unlock()
	if !fire {
		return nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return fmt.Errorf("faults: injected page-read failure (fault %d)", in.Stats(PageRead).Fired)
}

// PageReadDelay consults the PageLatency site and returns the modeled
// service delay of one physical read: zero when the site does not fire, the
// configured Delay plus a seeded uniform draw in [0, Jitter] when it does.
// With Burst > 1 a firing keeps the site hot for the next Burst-1
// consultations, each drawing its own jitter — a stretch of consecutive slow
// reads. The delay is returned, never slept: callers charge it into their
// latency accounting (buffercache converts it to IO cost units), keeping
// chaos runs deterministic and fast regardless of the injected severity.
func (in *Injector) PageReadDelay() time.Duration {
	return in.burstDelay(PageLatency)
}

// NetReadDelay consults the NetDelay site and returns the injected stall for
// one network read, with the same seeded jitter and burst semantics as
// PageReadDelay. Unlike the page-latency model this delay is actually slept
// by the chaos connection — a socket stall is real wall time to the
// reconnect and heartbeat machinery under test — so configure it small.
func (in *Injector) NetReadDelay() time.Duration {
	return in.burstDelay(NetDelay)
}

// burstDelay implements the shared fire/burst/jitter logic of the latency
// sites.
func (in *Injector) burstDelay(site Site) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[site]
	if !ok {
		return 0
	}
	var fire bool
	if st.burstLeft > 0 {
		// Mid-burst: this consultation is slow regardless of the dice, and
		// fireLocked must not roll them (a burst is one fault event whose
		// length is configured, not re-drawn).
		st.burstLeft--
		st.hits++
		st.fired++
		fire = true
	} else if in.fireLocked(site) {
		fire = true
		if st.cfg.Burst > 1 {
			st.burstLeft = st.cfg.Burst - 1
		}
	}
	if !fire {
		return 0
	}
	d := st.cfg.Delay
	if st.cfg.Jitter > 0 {
		d += time.Duration(in.rng.Int63n(int64(st.cfg.Jitter) + 1))
	}
	return d
}

// MaybePanic consults the UDFPanic site and panics when it fires. Call it
// from inside the frame whose panic recovery is under test.
func (in *Injector) MaybePanic() {
	if in.Fire(UDFPanic) {
		panic(fmt.Sprintf("faults: injected UDF panic (fault %d)", in.Stats(UDFPanic).Fired))
	}
}

// tearMode selects how a TearWriter damages its stream.
type tearMode int

const (
	tearTruncate tearMode = iota // stop writing at the offset and error out
	tearBitFlip                  // flip one bit at the offset, keep writing
)

// tearWriter implements the torn catalog write.
type tearWriter struct {
	w       io.Writer
	armed   bool
	mode    tearMode
	offset  int64 // byte offset at which the tear strikes
	written int64
}

// TearWriter wraps w with the CatalogTear site. When the site fires (decided
// once, at wrap time), the stream is damaged at a deterministic pseudo-random
// offset: either truncated there (subsequent writes fail, simulating a crash
// mid-write — the caller sees an error) or one bit is flipped there and
// writing continues silently (simulating undetected media corruption — the
// caller sees success and a corrupt file). When the site does not fire the
// wrapper is fully transparent.
func (in *Injector) TearWriter(w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	in.mu.Lock()
	fire := in.fireLocked(CatalogTear)
	var mode tearMode
	var offset int64
	if fire {
		mode = tearMode(in.rng.Intn(2))
		// Catalog streams carry at least a 12-byte header plus framed
		// entries; an offset in [1, 1024) lands inside every realistic
		// stream while still exercising header and entry damage.
		offset = 1 + in.rng.Int63n(1023)
	}
	in.mu.Unlock()
	if !fire {
		return w
	}
	return &tearWriter{w: w, armed: true, mode: mode, offset: offset}
}

// Write implements io.Writer with the configured damage.
func (t *tearWriter) Write(p []byte) (int, error) {
	if !t.armed {
		return t.w.Write(p)
	}
	switch t.mode {
	case tearTruncate:
		if t.written >= t.offset {
			return 0, fmt.Errorf("faults: injected torn write at offset %d", t.offset)
		}
		if t.written+int64(len(p)) <= t.offset {
			n, err := t.w.Write(p)
			t.written += int64(n)
			return n, err
		}
		keep := int(t.offset - t.written)
		n, err := t.w.Write(p[:keep])
		t.written += int64(n)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faults: injected torn write at offset %d", t.offset)
	default: // tearBitFlip
		// A stream shorter than the offset escapes unflipped — the tear
		// then degenerates to a clean write, which is fine: tears are
		// probabilistic anyway.
		if t.written <= t.offset && t.offset < t.written+int64(len(p)) {
			q := make([]byte, len(p))
			copy(q, p)
			q[t.offset-t.written] ^= 1 << 3
			p = q
		}
		n, err := t.w.Write(p)
		t.written += int64(n)
		return n, err
	}
}
