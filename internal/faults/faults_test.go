package faults

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestNilInjectorIsTransparent(t *testing.T) {
	var in *Injector
	if in.Fire(ObserveCost) {
		t.Error("nil injector fired")
	}
	if v, corrupted := in.MaybeCorruptCost(42); corrupted || v != 42 {
		t.Errorf("nil injector corrupted cost: %g, %v", v, corrupted)
	}
	if err := in.PageReadError(); err != nil {
		t.Errorf("nil injector failed a read: %v", err)
	}
	in.MaybePanic() // must not panic
	var buf bytes.Buffer
	if w := in.TearWriter(&buf); w != &buf {
		t.Error("nil injector wrapped the writer")
	}
	if s := in.Stats(PageRead); s != (SiteStats{}) {
		t.Errorf("nil injector has stats: %+v", s)
	}
}

func TestDisabledSiteNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 1000; i++ {
		if in.Fire(UDFPanic) {
			t.Fatal("un-enabled site fired")
		}
	}
	if s := in.Stats(UDFPanic); s.Fired != 0 {
		t.Errorf("Fired = %d, want 0", s.Fired)
	}
}

func TestZeroProbabilityIsTransparent(t *testing.T) {
	in := New(1)
	in.Enable(ObserveCost, SiteConfig{Probability: 0})
	for i := 0; i < 1000; i++ {
		if v, corrupted := in.MaybeCorruptCost(7); corrupted || v != 7 {
			t.Fatalf("zero-rate site corrupted: %g %v", v, corrupted)
		}
	}
	if s := in.Stats(ObserveCost); s.Hits != 1000 || s.Fired != 0 {
		t.Errorf("stats = %+v, want 1000 hits, 0 fired", s)
	}
}

func TestProbabilityFiresAtRoughlyTheConfiguredRate(t *testing.T) {
	in := New(7)
	in.Enable(PageRead, SiteConfig{Probability: 0.3})
	n := 10000
	for i := 0; i < n; i++ {
		in.Fire(PageRead)
	}
	got := float64(in.Stats(PageRead).Fired) / float64(n)
	if got < 0.25 || got > 0.35 {
		t.Errorf("fire rate %g, want ~0.3", got)
	}
}

func TestScheduleIsExact(t *testing.T) {
	in := New(1)
	in.Enable(UDFPanic, SiteConfig{Schedule: []int64{2, 5}})
	var fired []int
	for i := 1; i <= 6; i++ {
		if in.Fire(UDFPanic) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Errorf("fired at %v, want [2 5]", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []bool {
		in := New(99)
		in.Enable(ObserveCost, SiteConfig{Probability: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire(ObserveCost)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
}

func TestCorruptCostCoversAllKinds(t *testing.T) {
	in := New(3)
	in.Enable(ObserveCost, SiteConfig{Probability: 1})
	var sawNaN, sawInf, sawNeg, sawOutlier bool
	for i := 0; i < 8; i++ {
		v, corrupted := in.MaybeCorruptCost(10)
		if !corrupted {
			t.Fatal("probability-1 site did not fire")
		}
		switch {
		case math.IsNaN(v):
			sawNaN = true
		case math.IsInf(v, 0):
			sawInf = true
		case v < 0:
			sawNeg = true
		case v > 1000:
			sawOutlier = true
		default:
			t.Fatalf("corrupted value %g looks valid", v)
		}
	}
	if !sawNaN || !sawInf || !sawNeg || !sawOutlier {
		t.Errorf("corruption kinds missing: nan=%v inf=%v neg=%v outlier=%v",
			sawNaN, sawInf, sawNeg, sawOutlier)
	}
}

func TestMaybePanicPanics(t *testing.T) {
	in := New(1)
	in.Enable(UDFPanic, SiteConfig{Schedule: []int64{1}})
	defer func() {
		if recover() == nil {
			t.Error("scheduled panic did not fire")
		}
	}()
	in.MaybePanic()
}

func TestPageReadError(t *testing.T) {
	in := New(1)
	in.Enable(PageRead, SiteConfig{Schedule: []int64{2}})
	if err := in.PageReadError(); err != nil {
		t.Fatalf("hit 1 failed: %v", err)
	}
	if err := in.PageReadError(); err == nil {
		t.Fatal("scheduled hit 2 did not fail")
	}
	if err := in.PageReadError(); err != nil {
		t.Fatalf("hit 3 failed: %v", err)
	}
}

func TestTearWriterTruncates(t *testing.T) {
	// Scan seeds until we get a truncating tear, then check the stream is
	// cut at the reported offset and an error surfaces.
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	for seed := int64(0); seed < 64; seed++ {
		in := New(seed)
		in.Enable(CatalogTear, SiteConfig{Probability: 1})
		var buf bytes.Buffer
		w := in.TearWriter(&buf)
		_, err := w.Write(payload)
		if err == nil {
			continue // this seed drew the bit-flip mode
		}
		if buf.Len() >= len(payload) {
			t.Fatalf("truncating tear wrote the full payload (%d bytes)", buf.Len())
		}
		// Subsequent writes must keep failing (a crashed writer stays dead).
		if _, err := w.Write([]byte{1}); err == nil {
			t.Fatal("write after a truncating tear succeeded")
		}
		return
	}
	t.Fatal("no truncating tear in 64 seeds")
}

func TestTearWriterBitFlip(t *testing.T) {
	payload := bytes.Repeat([]byte{0x00}, 4096)
	for seed := int64(0); seed < 64; seed++ {
		in := New(seed)
		in.Enable(CatalogTear, SiteConfig{Probability: 1})
		var buf bytes.Buffer
		w := in.TearWriter(&buf)
		if _, err := w.Write(payload); err != nil {
			continue // truncate mode
		}
		if buf.Len() != len(payload) {
			t.Fatalf("bit-flip tear changed the length: %d", buf.Len())
		}
		diff := 0
		for _, b := range buf.Bytes() {
			if b != 0 {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("bit flip damaged %d bytes, want exactly 1", diff)
		}
		return
	}
	t.Fatal("no bit-flip tear in 64 seeds")
}

func TestTearWriterTransparentWhenIdle(t *testing.T) {
	in := New(5)
	in.Enable(CatalogTear, SiteConfig{Probability: 0})
	var buf bytes.Buffer
	w := in.TearWriter(&buf)
	payload := []byte("hello, catalog")
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Errorf("idle tear writer modified the stream: %q", buf.Bytes())
	}
}

func TestConcurrentFire(t *testing.T) {
	in := New(11)
	in.Enable(ObserveCost, SiteConfig{Probability: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Fire(ObserveCost)
				in.MaybeCorruptCost(float64(i))
			}
		}()
	}
	wg.Wait()
	if s := in.Stats(ObserveCost); s.Hits != 16000 {
		t.Errorf("Hits = %d, want 16000", s.Hits)
	}
}
