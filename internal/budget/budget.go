// Package budget implements the global memory wall: a fixed total byte
// budget arbitrated between live holders — quadtree cost models and the
// buffer cache — by comparing marginal value per byte. Each holder prices
// what its cheapest bytes are currently buying (Loss) and what one more
// step of bytes would earn (Gain), both in the workload's cost units per
// cycle; the Arbiter moves a bounded step from the lowest-marginal-value
// holder to the highest, with hysteresis, a cooldown, and a reversal guard
// so measurement noise cannot make the wall oscillate. Everything is
// deterministic and clock-free: marginals come from counter deltas between
// cycles, never from wall time.
package budget

import (
	"fmt"
	"sync"

	"mlq/internal/telemetry"
)

// Marginal prices one arbitration step of bytes at a holder, in the
// workload's cost units per cycle per byte.
type Marginal struct {
	// Gain estimates the cost saved each cycle, per byte, if the holder
	// were granted one more step of budget.
	Gain float64
	// Loss estimates the cost paid each cycle, per byte, if one step of
	// budget were taken away.
	Loss float64
}

// Holder is one tenant of the memory wall. Implementations are not safe
// for concurrent use; the Arbiter serializes all calls under its mutex.
type Holder interface {
	// Name identifies the holder in stats and telemetry. Unique per Arbiter.
	Name() string
	// BudgetBytes returns the bytes currently granted to the holder.
	BudgetBytes() int
	// FloorBytes returns the grant below which the holder cannot operate;
	// the Arbiter never shrinks a holder under its floor.
	FloorBytes() int
	// Tick consumes the telemetry accumulated since the previous Tick and
	// prices stepBytes of budget at the margin. Called exactly once per
	// arbitration cycle, including cooldown cycles, so deltas stay
	// per-cycle.
	Tick(stepBytes int) Marginal
	// SetBudget regrants the holder's budget. The Arbiter only calls it
	// with values >= FloorBytes.
	SetBudget(bytes int) error
}

// Defaults for the zero Config.
const (
	// DefaultStepBytes is the byte step one cycle may move.
	DefaultStepBytes = 4096
	// DefaultHysteresis is the fraction by which the recipient's gain must
	// exceed the donor's loss before a move happens.
	DefaultHysteresis = 0.25
	// DefaultCooldown is how many cycles the arbiter sits out after a move,
	// letting the holders' counters re-equilibrate at the new split.
	DefaultCooldown = 1
	// DefaultReversalGuard is how many cycles after a move the exact reverse
	// transfer stays blocked. Hysteresis bounds how big a marginal gap must
	// be; the guard bounds how often the same bytes may change direction, so
	// two holders whose estimators disagree cannot trade a step back and
	// forth in a limit cycle.
	DefaultReversalGuard = 8
)

// Config tunes the Arbiter. The zero value uses the defaults above.
type Config struct {
	// StepBytes bounds how many bytes one cycle may move (<=0 means
	// DefaultStepBytes). The step is further capped by the donor's
	// headroom above its floor.
	StepBytes int
	// Hysteresis is the move threshold: a move requires
	// gain > loss*(1+Hysteresis). Zero means DefaultHysteresis; negative
	// disables hysteresis entirely.
	Hysteresis float64
	// Cooldown is how many cycles to skip after a move. Zero means
	// DefaultCooldown; negative disables the cooldown.
	Cooldown int
	// ReversalGuard blocks the exact reverse of the most recent move for
	// this many cycles after it happens. Zero means DefaultReversalGuard;
	// negative disables the guard. Moves in the same direction, or between
	// other holder pairs, are never blocked.
	ReversalGuard int
}

func (c Config) step() int {
	if c.StepBytes > 0 {
		return c.StepBytes
	}
	return DefaultStepBytes
}

func (c Config) hysteresis() float64 {
	if c.Hysteresis < 0 {
		return 0
	}
	if c.Hysteresis > 0 {
		return c.Hysteresis
	}
	return DefaultHysteresis
}

func (c Config) cooldown() int {
	if c.Cooldown < 0 {
		return 0
	}
	if c.Cooldown == 0 {
		return DefaultCooldown
	}
	return c.Cooldown
}

func (c Config) reversalGuard() int {
	if c.ReversalGuard < 0 {
		return 0
	}
	if c.ReversalGuard == 0 {
		return DefaultReversalGuard
	}
	return c.ReversalGuard
}

// Move describes one byte transfer between holders. The zero Move means a
// cycle decided not to move anything.
type Move struct {
	From  string
	To    string
	Bytes int
}

// Moved reports whether the cycle transferred any bytes.
func (m Move) Moved() bool { return m.Bytes > 0 }

// Arbiter runs the memory wall. Safe for concurrent use; every cycle runs
// under one mutex, and Holder methods are only ever called while it is
// held.
type Arbiter struct {
	mu      sync.Mutex
	cfg     Config
	holders []Holder
	last    []Marginal // marginals from the most recent cycle, holder-aligned

	cooldown int
	// lastFrom/lastTo are holder indices of the most recent move; the
	// reverse transfer is blocked while cycles <= guardUntil.
	lastFrom, lastTo int
	guardUntil       int64

	cycles     int64
	moves      int64
	bytesMoved int64
	errors     int64

	tel *arbiterTelemetry
}

// New builds an Arbiter over at least two holders with distinct names.
func New(cfg Config, holders ...Holder) (*Arbiter, error) {
	if len(holders) < 2 {
		return nil, fmt.Errorf("budget: an arbiter needs at least 2 holders, got %d", len(holders))
	}
	seen := make(map[string]bool, len(holders))
	for _, h := range holders {
		if seen[h.Name()] {
			return nil, fmt.Errorf("budget: duplicate holder name %q", h.Name())
		}
		seen[h.Name()] = true
		if h.BudgetBytes() < h.FloorBytes() {
			return nil, fmt.Errorf("budget: holder %q starts below its floor (%d < %d bytes)",
				h.Name(), h.BudgetBytes(), h.FloorBytes())
		}
	}
	return &Arbiter{
		cfg:      cfg,
		holders:  holders,
		last:     make([]Marginal, len(holders)),
		lastFrom: -1,
		lastTo:   -1,
	}, nil
}

// Cycle runs one arbitration round: every holder Ticks (consuming its
// per-cycle counter deltas), then at most one bounded step of bytes moves
// from the holder whose cheapest bytes are worth least to the holder whose
// next bytes are worth most — if the gap clears the hysteresis threshold,
// the move would not reverse the previous one inside the guard window, and
// the donor stays at or above its floor. The donor is shrunk before the
// recipient grows, so the sum of grants never exceeds the wall.
func (a *Arbiter) Cycle() (Move, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	a.cycles++
	step := a.cfg.step()
	for i, h := range a.holders {
		a.last[i] = h.Tick(step)
	}
	if a.cooldown > 0 {
		a.cooldown--
		a.publish()
		return Move{}, nil
	}

	// Recipient: highest marginal gain (first wins on ties — holder order
	// is the deterministic tie-break).
	rec := 0
	for i := 1; i < len(a.holders); i++ {
		if a.last[i].Gain > a.last[rec].Gain {
			rec = i
		}
	}
	if a.last[rec].Gain <= 0 {
		a.publish()
		return Move{}, nil
	}
	// Donor: lowest marginal loss among the other holders that still have
	// headroom above their floor.
	don := -1
	for i, h := range a.holders {
		if i == rec || h.BudgetBytes() <= h.FloorBytes() {
			continue
		}
		if don < 0 || a.last[i].Loss < a.last[don].Loss {
			don = i
		}
	}
	if don < 0 {
		a.publish()
		return Move{}, nil
	}
	if a.last[rec].Gain <= a.last[don].Loss*(1+a.cfg.hysteresis()) {
		a.publish()
		return Move{}, nil
	}
	if rec == a.lastFrom && don == a.lastTo && a.cycles <= a.guardUntil {
		// This would exactly reverse the previous move inside the guard
		// window: the estimators are disagreeing about the same bytes, and
		// letting them trade is a limit cycle, not adaptation.
		a.publish()
		return Move{}, nil
	}
	give := step
	if head := a.holders[don].BudgetBytes() - a.holders[don].FloorBytes(); give > head {
		give = head
	}

	// Shrink the donor first: between the two grants the wall's total is
	// momentarily under-committed, never over.
	donBefore := a.holders[don].BudgetBytes()
	recBefore := a.holders[rec].BudgetBytes()
	if err := a.holders[don].SetBudget(donBefore - give); err != nil {
		a.errors++
		a.publish()
		return Move{}, fmt.Errorf("budget: shrinking %q: %w", a.holders[don].Name(), err)
	}
	if err := a.holders[rec].SetBudget(recBefore + give); err != nil {
		a.errors++
		if rbErr := a.holders[don].SetBudget(donBefore); rbErr != nil {
			a.errors++
			a.publish()
			return Move{}, fmt.Errorf("budget: growing %q failed (%v) and restoring %q failed: %w",
				a.holders[rec].Name(), err, a.holders[don].Name(), rbErr)
		}
		a.publish()
		return Move{}, fmt.Errorf("budget: growing %q: %w", a.holders[rec].Name(), err)
	}

	a.moves++
	a.bytesMoved += int64(give)
	a.cooldown = a.cfg.cooldown()
	a.lastFrom, a.lastTo = don, rec
	a.guardUntil = a.cycles + int64(a.cfg.reversalGuard())
	a.publish()
	return Move{From: a.holders[don].Name(), To: a.holders[rec].Name(), Bytes: give}, nil
}

// HolderStats is one holder's line in Stats.
type HolderStats struct {
	Name        string
	BudgetBytes int
	FloorBytes  int
	// Gain and Loss are the holder's marginals from the most recent cycle.
	Gain float64
	Loss float64
}

// Stats is a point-in-time view of the arbiter.
type Stats struct {
	Cycles     int64
	Moves      int64
	BytesMoved int64
	Errors     int64
	Holders    []HolderStats
}

// TotalBytes returns the sum of all grants — the wall itself. Constant
// across Cycles: arbitration conserves bytes.
func (s Stats) TotalBytes() int {
	total := 0
	for _, h := range s.Holders {
		total += h.BudgetBytes
	}
	return total
}

// Stats returns the arbiter's current counters and per-holder grants.
func (a *Arbiter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Stats{
		Cycles:     a.cycles,
		Moves:      a.moves,
		BytesMoved: a.bytesMoved,
		Errors:     a.errors,
		Holders:    make([]HolderStats, len(a.holders)),
	}
	for i, h := range a.holders {
		st.Holders[i] = HolderStats{
			Name:        h.Name(),
			BudgetBytes: h.BudgetBytes(),
			FloorBytes:  h.FloorBytes(),
			Gain:        a.last[i].Gain,
			Loss:        a.last[i].Loss,
		}
	}
	return st
}

// arbiterTelemetry mirrors the arbiter into a registry, pushed from Cycle
// under the arbiter's mutex (the push-from-owner pattern the rest of the
// repo uses).
type arbiterTelemetry struct {
	cycles *telemetry.Counter
	moves  *telemetry.Counter
	moved  *telemetry.Counter
	errs   *telemetry.Counter
	bytes  []*telemetry.Gauge
	gain   []*telemetry.Gauge
	loss   []*telemetry.Gauge
}

// Instrument registers the arbiter's metrics under mlq_budget_* with the
// given labels; per-holder series carry an additional holder label. A nil
// registry detaches the arbiter from telemetry.
func (a *Arbiter) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if reg == nil {
		a.tel = nil
		return
	}
	tel := &arbiterTelemetry{
		cycles: reg.Counter("mlq_budget_cycles_total", "arbitration cycles run", labels...),
		moves:  reg.Counter("mlq_budget_moves_total", "cycles that transferred bytes between holders", labels...),
		moved:  reg.Counter("mlq_budget_moved_bytes_total", "bytes transferred between holders", labels...),
		errs:   reg.Counter("mlq_budget_errors_total", "failed SetBudget calls during arbitration", labels...),
	}
	for _, h := range a.holders {
		hl := append(append([]telemetry.Label(nil), labels...), telemetry.L("holder", h.Name()))
		tel.bytes = append(tel.bytes, reg.Gauge("mlq_budget_holder_bytes", "live byte grant per holder (moves with arbitration)", hl...))
		tel.gain = append(tel.gain, reg.Gauge("mlq_budget_marginal_gain", "holder's latest marginal gain, cost units per cycle per byte", hl...))
		tel.loss = append(tel.loss, reg.Gauge("mlq_budget_marginal_loss", "holder's latest marginal loss, cost units per cycle per byte", hl...))
	}
	a.tel = tel
	a.publish()
}

// publish pushes current state into the registered metrics. Callers hold
// a.mu.
func (a *Arbiter) publish() {
	if a.tel == nil {
		return
	}
	a.tel.cycles.Store(a.cycles)
	a.tel.moves.Store(a.moves)
	a.tel.moved.Store(a.bytesMoved)
	a.tel.errs.Store(a.errors)
	for i, h := range a.holders {
		a.tel.bytes[i].SetInt(int64(h.BudgetBytes()))
		a.tel.gain[i].Set(a.last[i].Gain)
		a.tel.loss[i].Set(a.last[i].Loss)
	}
}
