package budget

import (
	"errors"
	"math/rand"
	"testing"

	"mlq/internal/buffercache"
	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/pagestore"
	"mlq/internal/quadtree"
	"mlq/internal/telemetry"
)

// fakeHolder is a scripted Holder: fixed marginals, in-memory grant.
type fakeHolder struct {
	name   string
	budget int
	floor  int
	margin Marginal

	ticks     int
	lastStep  int
	shrinkErr error
	growErr   error
}

func (f *fakeHolder) Name() string     { return f.name }
func (f *fakeHolder) BudgetBytes() int { return f.budget }
func (f *fakeHolder) FloorBytes() int  { return f.floor }
func (f *fakeHolder) Tick(step int) Marginal {
	f.ticks++
	f.lastStep = step
	return f.margin
}
func (f *fakeHolder) SetBudget(b int) error {
	if b < f.budget && f.shrinkErr != nil {
		return f.shrinkErr
	}
	if b > f.budget && f.growErr != nil {
		return f.growErr
	}
	f.budget = b
	return nil
}

func totalBytes(hs ...*fakeHolder) int {
	total := 0
	for _, h := range hs {
		total += h.budget
	}
	return total
}

func TestNewValidation(t *testing.T) {
	a := &fakeHolder{name: "a", budget: 100, floor: 10}
	if _, err := New(Config{}, a); err == nil {
		t.Error("single holder accepted")
	}
	dup := &fakeHolder{name: "a", budget: 100, floor: 10}
	if _, err := New(Config{}, a, dup); err == nil {
		t.Error("duplicate names accepted")
	}
	under := &fakeHolder{name: "b", budget: 5, floor: 10}
	if _, err := New(Config{}, a, under); err == nil {
		t.Error("holder starting below its floor accepted")
	}
}

func TestCycleMovesTowardHighestGain(t *testing.T) {
	hungry := &fakeHolder{name: "model", budget: 8192, floor: 1024, margin: Marginal{Gain: 5, Loss: 5}}
	idle := &fakeHolder{name: "cache", budget: 8192, floor: 1024, margin: Marginal{}}
	a, err := New(Config{StepBytes: 2048, Cooldown: -1}, hungry, idle)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := a.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	want := Move{From: "cache", To: "model", Bytes: 2048}
	if mv != want {
		t.Fatalf("move = %+v, want %+v", mv, want)
	}
	if hungry.budget != 8192+2048 || idle.budget != 8192-2048 {
		t.Errorf("grants %d/%d after move", hungry.budget, idle.budget)
	}
	if hungry.ticks != 1 || idle.ticks != 1 || hungry.lastStep != 2048 {
		t.Error("holders not ticked exactly once with the configured step")
	}
	if got := totalBytes(hungry, idle); got != 2*8192 {
		t.Errorf("total %d bytes, arbitration must conserve the wall", got)
	}
}

func TestCycleStepBoundedByDonorHeadroom(t *testing.T) {
	hungry := &fakeHolder{name: "a", budget: 4096, floor: 512, margin: Marginal{Gain: 9, Loss: 9}}
	donor := &fakeHolder{name: "b", budget: 1024, floor: 512, margin: Marginal{}}
	a, err := New(Config{StepBytes: 4096, Cooldown: -1}, hungry, donor)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := a.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if mv.Bytes != 512 {
		t.Fatalf("moved %d bytes, want 512 (donor headroom)", mv.Bytes)
	}
	if donor.budget != donor.floor {
		t.Errorf("donor at %d, want its floor %d", donor.budget, donor.floor)
	}
	// The donor is now pinned to its floor: no further moves.
	if mv, err := a.Cycle(); err != nil || mv.Moved() {
		t.Errorf("move %+v err %v from a floored donor", mv, err)
	}
}

func TestHysteresisBlocksMarginalMoves(t *testing.T) {
	// Gain 1.0 vs loss 0.9: under the default 25% hysteresis the gap is
	// noise; with hysteresis disabled it is a move.
	mk := func() (*fakeHolder, *fakeHolder) {
		return &fakeHolder{name: "a", budget: 4096, floor: 512, margin: Marginal{Gain: 1.0, Loss: 1.0}},
			&fakeHolder{name: "b", budget: 4096, floor: 512, margin: Marginal{Gain: 0.9, Loss: 0.9}}
	}
	ha, hb := mk()
	a, err := New(Config{StepBytes: 1024}, ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	if mv, err := a.Cycle(); err != nil || mv.Moved() {
		t.Errorf("move %+v err %v through a 1.0-vs-0.9 gap under hysteresis", mv, err)
	}
	ha, hb = mk()
	a, err = New(Config{StepBytes: 1024, Hysteresis: -1, Cooldown: -1}, ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	if mv, err := a.Cycle(); err != nil || !mv.Moved() {
		t.Errorf("move %+v err %v, want a move with hysteresis disabled", mv, err)
	}
}

func TestCooldownSkipsCyclesButStillTicks(t *testing.T) {
	hungry := &fakeHolder{name: "a", budget: 4096, floor: 512, margin: Marginal{Gain: 9, Loss: 9}}
	donor := &fakeHolder{name: "b", budget: 65536, floor: 512, margin: Marginal{}}
	a, err := New(Config{StepBytes: 1024, Cooldown: 2}, hungry, donor)
	if err != nil {
		t.Fatal(err)
	}
	if mv, _ := a.Cycle(); !mv.Moved() {
		t.Fatal("first cycle should move")
	}
	for i := 0; i < 2; i++ {
		if mv, _ := a.Cycle(); mv.Moved() {
			t.Fatalf("cooldown cycle %d moved", i)
		}
	}
	if mv, _ := a.Cycle(); !mv.Moved() {
		t.Error("cycle after cooldown should move again")
	}
	if hungry.ticks != 4 || donor.ticks != 4 {
		t.Errorf("ticks %d/%d, want 4/4 — cooldown cycles must still consume deltas", hungry.ticks, donor.ticks)
	}
}

func TestZeroGainNeverMoves(t *testing.T) {
	ha := &fakeHolder{name: "a", budget: 4096, floor: 512}
	hb := &fakeHolder{name: "b", budget: 4096, floor: 512}
	a, err := New(Config{}, ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if mv, err := a.Cycle(); err != nil || mv.Moved() {
			t.Fatalf("cycle %d: move %+v err %v with nothing to gain", i, mv, err)
		}
	}
	st := a.Stats()
	if st.Cycles != 5 || st.Moves != 0 || st.BytesMoved != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestConservationUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ha := &fakeHolder{name: "a", budget: 16384, floor: 1024}
	hb := &fakeHolder{name: "b", budget: 16384, floor: 1024}
	hc := &fakeHolder{name: "c", budget: 16384, floor: 1024}
	a, err := New(Config{StepBytes: 2048, Cooldown: -1}, ha, hb, hc)
	if err != nil {
		t.Fatal(err)
	}
	wall := totalBytes(ha, hb, hc)
	for i := 0; i < 200; i++ {
		ha.margin = Marginal{Gain: rng.Float64() * 10, Loss: rng.Float64() * 10}
		hb.margin = Marginal{Gain: rng.Float64() * 10, Loss: rng.Float64() * 10}
		hc.margin = Marginal{Gain: rng.Float64() * 10, Loss: rng.Float64() * 10}
		if _, err := a.Cycle(); err != nil {
			t.Fatal(err)
		}
		if got := totalBytes(ha, hb, hc); got != wall {
			t.Fatalf("cycle %d: total %d bytes, want %d — arbitration leaked", i, got, wall)
		}
		for _, h := range []*fakeHolder{ha, hb, hc} {
			if h.budget < h.floor {
				t.Fatalf("cycle %d: holder %s under its floor (%d < %d)", i, h.name, h.budget, h.floor)
			}
		}
	}
	if a.Stats().Moves == 0 {
		t.Error("churn produced no moves at all")
	}
}

func TestGrowFailureRollsBackDonor(t *testing.T) {
	boom := errors.New("boom")
	hungry := &fakeHolder{name: "a", budget: 4096, floor: 512, margin: Marginal{Gain: 9, Loss: 9}, growErr: boom}
	donor := &fakeHolder{name: "b", budget: 4096, floor: 512, margin: Marginal{}}
	a, err := New(Config{StepBytes: 1024}, hungry, donor)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Cycle(); !errors.Is(err, boom) {
		t.Fatalf("Cycle error = %v, want wrapped boom", err)
	}
	if donor.budget != 4096 || hungry.budget != 4096 {
		t.Errorf("grants %d/%d after failed grow, want both restored to 4096", hungry.budget, donor.budget)
	}
	if a.Stats().Errors != 1 || a.Stats().Moves != 0 {
		t.Errorf("stats %+v after failed grow", a.Stats())
	}
}

func TestStatsAndTelemetry(t *testing.T) {
	hungry := &fakeHolder{name: "model", budget: 8192, floor: 1024, margin: Marginal{Gain: 5, Loss: 5}}
	idle := &fakeHolder{name: "cache", budget: 8192, floor: 1024, margin: Marginal{}}
	a, err := New(Config{StepBytes: 2048, Cooldown: -1}, hungry, idle)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	a.Instrument(reg)
	if _, err := a.Cycle(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Cycles != 1 || st.Moves != 1 || st.BytesMoved != 2048 {
		t.Errorf("stats %+v", st)
	}
	if st.TotalBytes() != 2*8192 {
		t.Errorf("TotalBytes = %d", st.TotalBytes())
	}
	if st.Holders[0].Name != "model" || st.Holders[0].Gain != 5 || st.Holders[1].Loss != 0 {
		t.Errorf("holder stats %+v", st.Holders)
	}
	// Registry lookups return the same series the arbiter publishes into.
	if v := reg.Counter("mlq_budget_moves_total", "").Value(); v != 1 {
		t.Errorf("mlq_budget_moves_total = %d", v)
	}
	if v := reg.Counter("mlq_budget_moved_bytes_total", "").Value(); v != 2048 {
		t.Errorf("mlq_budget_moved_bytes_total = %d", v)
	}
	if v := reg.Gauge("mlq_budget_holder_bytes", "", telemetry.L("holder", "model")).Value(); v != 8192+2048 {
		t.Errorf("mlq_budget_holder_bytes{holder=model} = %g", v)
	}
	if v := reg.Gauge("mlq_budget_marginal_gain", "", telemetry.L("holder", "model")).Value(); v != 5 {
		t.Errorf("mlq_budget_marginal_gain{holder=model} = %g", v)
	}
}

// trainedModel returns a budget-bound MLQ model fed n observations of a
// spatially varying cost surface.
func trainedModel(t *testing.T, limit int, n int) *core.MLQ {
	t.Helper()
	m, err := core.NewMLQ(quadtree.Config{
		Region:      geom.UnitCube(2),
		MaxDepth:    6,
		MemoryLimit: limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		if err := m.Observe(p, 10*p[0]+100*p[1]*p[1]); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestModelHolderMarginals(t *testing.T) {
	m := trainedModel(t, 40*quadtree.DefaultNodeBytes, 0)
	h := NewModelHolder("model", m, 0)
	if h.FloorBytes() != quadtree.DefaultNodeBytes {
		t.Errorf("floor %d, want one node (%d)", h.FloorBytes(), quadtree.DefaultNodeBytes)
	}
	if h.BudgetBytes() != 40*quadtree.DefaultNodeBytes {
		t.Errorf("budget %d, want the tree's limit", h.BudgetBytes())
	}
	// Nothing observed yet: no demand either way.
	if got := h.Tick(quadtree.DefaultNodeBytes); got != (Marginal{}) {
		t.Errorf("untrained marginal %+v, want zero", got)
	}

	// Train until budget-bound; the insert delta lands in this Tick.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		if err := m.Observe(p, 10*p[0]+100*p[1]*p[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := h.Tick(4 * quadtree.DefaultNodeBytes)
	if got.Gain <= 0 || got.Loss != got.Gain {
		t.Errorf("budget-bound marginal %+v, want Gain == Loss > 0", got)
	}
	// No new inserts since: the model has no live demand.
	if got := h.Tick(4 * quadtree.DefaultNodeBytes); got != (Marginal{}) {
		t.Errorf("idle marginal %+v, want zero", got)
	}

	// A holder with a step of slack under its limit prices bytes at zero.
	if err := h.SetBudget(m.MemoryUsed() + 8*quadtree.DefaultNodeBytes); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(geom.Point{0.5, 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if got := h.Tick(4 * quadtree.DefaultNodeBytes); got != (Marginal{}) {
		t.Errorf("slack marginal %+v, want zero", got)
	}
}

func TestModelHolderSetBudgetResizesTree(t *testing.T) {
	m := trainedModel(t, 60*quadtree.DefaultNodeBytes, 3000)
	h := NewModelHolder("model", m, 0)
	shrunk := 15 * quadtree.DefaultNodeBytes
	if err := h.SetBudget(shrunk); err != nil {
		t.Fatal(err)
	}
	if m.MemoryUsed() > shrunk || m.MemoryLimit() != shrunk || h.BudgetBytes() != shrunk {
		t.Errorf("used=%d limit=%d grant=%d after SetBudget(%d)",
			m.MemoryUsed(), m.MemoryLimit(), h.BudgetBytes(), shrunk)
	}
	if err := h.SetBudget(quadtree.DefaultNodeBytes - 1); err == nil {
		t.Error("sub-node grant accepted")
	}
}

func newCache(t *testing.T, pages, capacity int) *buffercache.Cache {
	t.Helper()
	s, err := pagestore.New(512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		id := s.Alloc()
		if err := s.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := buffercache.New(s, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHolderMarginals(t *testing.T) {
	c := newCache(t, 8, 2)
	h := NewCacheHolder("cache", c, 1)
	if h.FloorBytes() != 512 || h.BudgetBytes() != 2*512 {
		t.Errorf("floor=%d budget=%d", h.FloorBytes(), h.BudgetBytes())
	}
	// Thrash: cycle 4 pages through a 2-page cache twice. Round two is all
	// ghost hits — maximal demand for more bytes.
	for round := 0; round < 2; round++ {
		for id := pagestore.PageID(0); id < 4; id++ {
			if _, err := c.Get(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := h.Tick(1024)
	if got.Gain <= 0 {
		t.Errorf("thrashing cache gain %g, want > 0", got.Gain)
	}
	if got.Loss < got.Gain {
		t.Errorf("thrashing cache loss %g below its gain %g", got.Loss, got.Gain)
	}
	// No lookups since: no demand.
	if got := h.Tick(1024); got != (Marginal{}) {
		t.Errorf("idle marginal %+v, want zero", got)
	}
}

func TestCacheHolderNotFullIsFreeToShrink(t *testing.T) {
	c := newCache(t, 8, 6)
	h := NewCacheHolder("cache", c, 1)
	for id := pagestore.PageID(0); id < 2; id++ {
		if _, err := c.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(0); err != nil { // a hit, so dHits > 0
		t.Fatal(err)
	}
	got := h.Tick(1024)
	if got.Loss != 0 {
		t.Errorf("half-empty cache loss %g, want 0 (unused pages are free)", got.Loss)
	}
}

func TestCacheHolderSetBudgetRoundsToPagesConservingBytes(t *testing.T) {
	c := newCache(t, 8, 4)
	h := NewCacheHolder("cache", c, 1)
	grant := 2*512 + 100
	if err := h.SetBudget(grant); err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 2 {
		t.Errorf("capacity %d pages, want 2", c.Capacity())
	}
	if h.BudgetBytes() != grant {
		t.Errorf("BudgetBytes %d, want the full %d-byte grant (remainder carried)", h.BudgetBytes(), grant)
	}
	if err := h.SetBudget(511); err == nil {
		t.Error("sub-page grant accepted")
	}
}

func TestArbiterOverRealHolders(t *testing.T) {
	// A budget-bound model and a cold, oversized cache: the wall should
	// flow bytes from the cache to the model and never leak.
	m := trainedModel(t, 20*quadtree.DefaultNodeBytes, 2000)
	c := newCache(t, 64, 32)
	mh := NewModelHolder("model", m, 0)
	ch := NewCacheHolder("cache", c, 2)
	a, err := New(Config{StepBytes: 2 * quadtree.DefaultNodeBytes, Cooldown: -1}, mh, ch)
	if err != nil {
		t.Fatal(err)
	}
	wall := mh.BudgetBytes() + ch.BudgetBytes()
	rng := rand.New(rand.NewSource(11))
	moved := 0
	for cycle := 0; cycle < 30; cycle++ {
		for i := 0; i < 50; i++ {
			p := geom.Point{rng.Float64(), rng.Float64()}
			if err := m.Observe(p, 10*p[0]+100*p[1]*p[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Get(pagestore.PageID(rng.Intn(64))); err != nil {
				t.Fatal(err)
			}
		}
		mv, err := a.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if mv.Moved() {
			moved++
			if mv.To != "model" {
				t.Errorf("cycle %d: bytes flowed to %q, want the budget-bound model", cycle, mv.To)
			}
		}
		if got := mh.BudgetBytes() + ch.BudgetBytes(); got != wall {
			t.Fatalf("cycle %d: wall %d bytes, want %d", cycle, got, wall)
		}
	}
	if moved == 0 {
		t.Error("no bytes moved toward the starved model")
	}
	if m.MemoryLimit() <= 20*quadtree.DefaultNodeBytes {
		t.Error("model budget did not grow")
	}
}

func TestReversalGuardBlocksPingPong(t *testing.T) {
	a := &fakeHolder{name: "a", budget: 8192, floor: 0, margin: Marginal{Gain: 5, Loss: 5}}
	b := &fakeHolder{name: "b", budget: 8192, floor: 0, margin: Marginal{}}
	arb, err := New(Config{StepBytes: 1024, Cooldown: -1, Hysteresis: -1, ReversalGuard: 3}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := arb.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if mv.From != "b" || mv.To != "a" || mv.Bytes != 1024 {
		t.Fatalf("first cycle moved %+v, want 1024 b->a", mv)
	}

	// Flip the marginals: the profitable move is now the exact reverse, and
	// the guard must hold it off for ReversalGuard cycles.
	a.margin = Marginal{}
	b.margin = Marginal{Gain: 5, Loss: 5}
	for i := 0; i < 3; i++ {
		mv, err = arb.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if mv.Moved() {
			t.Fatalf("guarded cycle %d moved %+v, want no move", i, mv)
		}
	}
	mv, err = arb.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if mv.From != "a" || mv.To != "b" || mv.Bytes != 1024 {
		t.Fatalf("post-guard cycle moved %+v, want 1024 a->b", mv)
	}
}

func TestReversalGuardAllowsSameDirection(t *testing.T) {
	a := &fakeHolder{name: "a", budget: 8192, floor: 0, margin: Marginal{Gain: 5, Loss: 5}}
	b := &fakeHolder{name: "b", budget: 8192, floor: 0, margin: Marginal{}}
	arb, err := New(Config{StepBytes: 1024, Cooldown: -1, Hysteresis: -1, ReversalGuard: 100}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mv, err := arb.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if mv.From != "b" || mv.To != "a" || mv.Bytes != 1024 {
			t.Fatalf("cycle %d moved %+v, want 1024 b->a (guard must not block repeats)", i, mv)
		}
	}
}

func TestReversalGuardDisabled(t *testing.T) {
	a := &fakeHolder{name: "a", budget: 8192, floor: 0, margin: Marginal{Gain: 5, Loss: 5}}
	b := &fakeHolder{name: "b", budget: 8192, floor: 0, margin: Marginal{}}
	arb, err := New(Config{StepBytes: 1024, Cooldown: -1, Hysteresis: -1, ReversalGuard: -1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mv, err := arb.Cycle(); err != nil || mv.To != "a" {
		t.Fatalf("first cycle: %+v, %v", mv, err)
	}
	a.margin = Marginal{}
	b.margin = Marginal{Gain: 5, Loss: 5}
	mv, err := arb.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if mv.From != "a" || mv.To != "b" {
		t.Fatalf("disabled guard blocked the reverse move: %+v", mv)
	}
}
