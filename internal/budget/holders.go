package budget

import (
	"fmt"

	"mlq/internal/buffercache"
	"mlq/internal/quadtree"
)

// ModelPort is the slice of a cost model the arbiter needs: a consistent
// read of the tree and a way to move its budget. Both *core.MLQ and
// *core.Publisher satisfy it (the Publisher's Snapshot is a free atomic
// load, and its Resize routes through the single writer goroutine, which
// makes it the natural port for a concurrent engine).
type ModelPort interface {
	Snapshot() *quadtree.Snapshot
	Resize(newLimit int) error
}

// ModelHolder prices a quadtree cost model's bytes. Its marginals come
// from the tree's own compression economics: ShrinkLoss says what evicting
// the cheapest step of nodes would cost in absolute prediction error per
// query, and the insert-counter delta says how many queries a cycle feeds
// back. A tree with a whole step of slack under its limit prices its
// marginal bytes at zero — they are buying nothing.
type ModelHolder struct {
	name  string
	port  ModelPort
	floor int

	budget      int
	prevInserts int64
}

// NewModelHolder adapts port as a Holder. floorBytes is clamped up to one
// node — the tree's own hard floor.
func NewModelHolder(name string, port ModelPort, floorBytes int) *ModelHolder {
	snap := port.Snapshot()
	if nb := snap.Config().NodeBytes; floorBytes < nb {
		floorBytes = nb
	}
	return &ModelHolder{
		name:        name,
		port:        port,
		floor:       floorBytes,
		budget:      snap.MemoryLimit(),
		prevInserts: snap.Inserts(),
	}
}

// Name implements Holder.
func (h *ModelHolder) Name() string { return h.name }

// BudgetBytes implements Holder.
func (h *ModelHolder) BudgetBytes() int { return h.budget }

// FloorBytes implements Holder.
func (h *ModelHolder) FloorBytes() int { return h.floor }

// Tick implements Holder.
func (h *ModelHolder) Tick(stepBytes int) Marginal {
	snap := h.port.Snapshot()
	// Follow resizes applied outside the arbiter so grants never drift
	// from the tree's live limit.
	h.budget = snap.MemoryLimit()
	dIns := snap.Inserts() - h.prevInserts
	h.prevInserts = snap.Inserts()
	if stepBytes <= 0 || dIns <= 0 {
		return Marginal{}
	}
	if snap.MemoryLimit()-snap.MemoryUsed() >= stepBytes {
		// A whole step of slack: the marginal bytes are idle, free to
		// give, and one more step would buy nothing yet.
		return Marginal{}
	}
	// Budget-bound. The cheapest step of nodes is buying ShrinkLoss of
	// absolute error on each of this cycle's dIns queries; one more step
	// would buy about as much, so the gradient prices both directions.
	grad := float64(dIns) * snap.ShrinkLoss(stepBytes) / float64(stepBytes)
	return Marginal{Gain: grad, Loss: grad}
}

// SetBudget implements Holder by resizing the underlying tree.
func (h *ModelHolder) SetBudget(bytes int) error {
	if err := h.port.Resize(bytes); err != nil {
		return err
	}
	h.budget = bytes
	return nil
}

// CacheHolder prices the buffer cache's bytes. Gain comes from the ghost
// list: each ghost hit is a physical read one more capacity window of
// pages would have served from memory. Loss prices the LRU tail: the
// cycle's hits spread over the cache's bytes, floored by the gain (a cache
// thrashing hard enough to earn bytes is at least that expensive to
// shrink). Both sides are scaled by the observed cost of a miss — one
// clean read plus the cycle's share of charged retry/latency units — so a
// degraded disk raises the cache's bids exactly as it raises real costs.
type CacheHolder struct {
	name     string
	cache    *buffercache.Cache
	floor    int // pages
	pageSize int

	// remainder carries the bytes of the current grant that do not fill a
	// whole page, so arbitration conserves bytes exactly even when the
	// step is not page-aligned.
	remainder int

	prevHits    int64
	prevMisses  int64
	prevGhost   int64
	prevCharged float64
}

// NewCacheHolder adapts cache as a Holder. floorPages is clamped up to 1.
func NewCacheHolder(name string, cache *buffercache.Cache, floorPages int) *CacheHolder {
	if floorPages < 1 {
		floorPages = 1
	}
	return &CacheHolder{
		name:        name,
		cache:       cache,
		floor:       floorPages,
		pageSize:    cache.CapacityBytes() / cache.Capacity(),
		prevHits:    cache.Hits(),
		prevMisses:  cache.Misses(),
		prevGhost:   cache.GhostHits(),
		prevCharged: cache.ChargedUnits(),
	}
}

// Name implements Holder.
func (h *CacheHolder) Name() string { return h.name }

// BudgetBytes implements Holder.
func (h *CacheHolder) BudgetBytes() int { return h.cache.CapacityBytes() + h.remainder }

// FloorBytes implements Holder.
func (h *CacheHolder) FloorBytes() int { return h.floor * h.pageSize }

// Tick implements Holder.
func (h *CacheHolder) Tick(stepBytes int) Marginal {
	hits, misses := h.cache.Hits(), h.cache.Misses()
	ghost, charged := h.cache.GhostHits(), h.cache.ChargedUnits()
	dHits := hits - h.prevHits
	dMiss := misses - h.prevMisses
	dGhost := ghost - h.prevGhost
	dCharged := charged - h.prevCharged
	h.prevHits, h.prevMisses, h.prevGhost, h.prevCharged = hits, misses, ghost, charged
	if stepBytes <= 0 || dHits+dMiss <= 0 {
		return Marginal{}
	}
	costPerMiss := 1.0
	if dMiss > 0 {
		costPerMiss = (float64(dMiss) + dCharged) / float64(dMiss)
	}
	var m Marginal
	// The ghost window is one capacity's worth of bytes: dGhost misses per
	// cycle would have been hits with that many more bytes.
	if window := h.cache.CapacityBytes(); window > 0 {
		m.Gain = float64(dGhost) * costPerMiss / float64(window)
	}
	m.Loss = m.Gain
	if cb := h.cache.CapacityBytes(); cb > 0 {
		if tail := float64(dHits) * costPerMiss / float64(cb); tail > m.Loss {
			m.Loss = tail
		}
	}
	if h.cache.Len() < h.cache.Capacity() {
		// The cache is not even full: its marginal pages hold nothing.
		m.Loss = 0
	}
	return m
}

// SetBudget implements Holder by resizing the cache to as many whole pages
// as the grant covers, carrying the rest as a byte remainder.
func (h *CacheHolder) SetBudget(bytes int) error {
	pages := bytes / h.pageSize
	if pages < 1 {
		return fmt.Errorf("budget: grant of %d bytes cannot hold one %d-byte page", bytes, h.pageSize)
	}
	if err := h.cache.Resize(pages); err != nil {
		return err
	}
	h.remainder = bytes - pages*h.pageSize
	return nil
}
