package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanOwner enforces the repo's channel-ownership discipline in library
// code:
//
//  1. Single closing owner: a channel (identified by the variable or field
//     closed) may have exactly one close site. Two close sites is the shape
//     of a double-close panic — even if today's call graph never reaches
//     both, the next refactor can.
//  2. Guarded sends: a send must sit under a select with a shutdown
//     alternative (another case or a default), so a peer that stopped
//     receiving cannot wedge the sender forever. Deliberate blocking sends
//     — a bounded handoff slot, a synchronization barrier — are allowed
//     with a //lint:ignore chanowner reason naming the guarantee.
type ChanOwner struct{}

// Name implements Analyzer.
func (ChanOwner) Name() string { return "chanowner" }

// Doc implements Analyzer.
func (ChanOwner) Doc() string {
	return "channels have one closing owner and sends carry a shutdown alternative"
}

// Run implements Analyzer.
func (ChanOwner) Run(pkg *Package) []Finding {
	if !isInternal(pkg) {
		return nil
	}
	var out []Finding
	out = append(out, checkCloseOwners(pkg)...)
	out = append(out, checkGuardedSends(pkg)...)
	return out
}

// checkCloseOwners flags every close site of a channel that is closed in
// more than one place.
func checkCloseOwners(pkg *Package) []Finding {
	type site struct {
		pos  token.Pos
		name string
	}
	closes := make(map[types.Object][]site)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "close" {
				return true
			}
			leaf, obj := leafUse(pkg, call.Args[0])
			if obj != nil {
				closes[obj] = append(closes[obj], site{pos: call.Pos(), name: leaf.Name})
			}
			return true
		})
	}
	var out []Finding
	for _, sites := range closes {
		if len(sites) < 2 {
			continue
		}
		for _, s := range sites {
			out = append(out, finding(pkg, "chanowner", s.pos,
				"channel %s is closed at %d sites; a channel needs exactly one closing owner",
				s.name, len(sites)))
		}
	}
	return out
}

// checkGuardedSends flags sends that are not a case of a select carrying a
// shutdown alternative.
func checkGuardedSends(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		// First index which sends are select cases, and whether their
		// select has an alternative (a second case or a default).
		guarded := make(map[*ast.SendStmt]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			adequate := len(sel.Body.List) >= 2
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					adequate = true // default case
				}
			}
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if ss, ok := cc.Comm.(*ast.SendStmt); ok {
					guarded[ss] = adequate
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			ss, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			adequate, inSelect := guarded[ss]
			switch {
			case !inSelect:
				out = append(out, finding(pkg, "chanowner", ss.Pos(),
					"blocking send outside select; add a shutdown case or justify the bounded queue with //lint:ignore"))
			case !adequate:
				out = append(out, finding(pkg, "chanowner", ss.Pos(),
					"send sits in a single-case select with no shutdown alternative"))
			}
			return true
		})
	}
	return out
}
