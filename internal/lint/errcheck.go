package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckCore flags dropped error returns at the feedback loop's own
// seams, where a swallowed error silently severs the self-tuning cycle of
// Fig. 1:
//
//   - Model.Observe — a dropped error means the model silently stops
//     learning (or worse, the caller assumes it did learn);
//   - udf.Execute — a dropped error turns a failed execution into a bogus
//     zero-cost observation;
//   - catalog.SaveFile / catalog.LoadFile — a dropped error loses trained
//     models across restarts.
//
// A call site is flagged when the error result is discarded: the call is a
// bare statement, the error position is assigned to _, or the call runs
// under go/defer where the result is unrecoverable.
type ErrcheckCore struct{}

func (ErrcheckCore) Name() string { return "errcheck-core" }
func (ErrcheckCore) Doc() string {
	return "never drop errors from Model.Observe, udf.Execute, or catalog SaveFile/LoadFile (feedback-loop integrity)"
}

// coreErrCall reports whether the call is one of the watched seams and, if
// so, which result index carries the error.
func coreErrCall(pkg *Package, call *ast.CallExpr) (label string, errIndex int, ok bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return "", 0, false
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	errIndex = -1
	for i := 0; i < res.Len(); i++ {
		if named, okN := res.At(i).Type().(*types.Named); okN && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			errIndex = i
		}
	}
	if errIndex < 0 {
		return "", 0, false
	}
	switch {
	case sig.Recv() != nil && fn.Name() == "Observe":
		return fn.Name(), errIndex, true
	case sig.Recv() != nil && fn.Name() == "Execute":
		return fn.Name(), errIndex, true
	case fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "/catalog") &&
		(fn.Name() == "SaveFile" || fn.Name() == "LoadFile"):
		return "catalog." + fn.Name(), errIndex, true
	}
	return "", 0, false
}

func (ErrcheckCore) Run(pkg *Package) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr, label string) {
		out = append(out, finding(pkg, "errcheck-core", call.Pos(),
			"%s error is dropped; a swallowed error here severs the feedback loop", label))
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if label, _, ok := coreErrCall(pkg, call); ok {
						report(call, label)
					}
				}
			case *ast.GoStmt:
				if label, _, ok := coreErrCall(pkg, n.Call); ok {
					report(n.Call, label)
				}
			case *ast.DeferStmt:
				if label, _, ok := coreErrCall(pkg, n.Call); ok {
					report(n.Call, label)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				label, errIndex, ok := coreErrCall(pkg, call)
				if !ok || errIndex >= len(n.Lhs) {
					return true
				}
				if id, ok := n.Lhs[errIndex].(*ast.Ident); ok && id.Name == "_" {
					report(call, label)
				}
			}
			return true
		})
	}
	return out
}
