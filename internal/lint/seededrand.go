package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces the replayability invariant of §5.1: every synthetic
// workload, peak layout and query stream must be reproducible from a seed
// recorded in the experiment config. Two things break that:
//
//  1. math/rand's global source (rand.Intn, rand.Float64, rand.Seed, ...),
//     which is process-wide state any package can perturb. Library code in
//     internal/ must thread an explicit *rand.Rand built with
//     rand.New(rand.NewSource(seed)).
//
//  2. Wall-clock seeds: rand.NewSource(time.Now().UnixNano()) and friends
//     make the "seed" unrecordable. Seeds come from config.
type SeededRand struct{}

func (SeededRand) Name() string { return "seededrand" }
func (SeededRand) Doc() string {
	return "no global math/rand functions or time-derived seeds in internal code (replayability invariant)"
}

// seededRandAllowed are the math/rand package-level functions that do NOT
// touch the global source and are therefore fine: the constructors used to
// build explicit, seeded generators.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *Rand; no global state
}

func (SeededRand) Run(pkg *Package) []Finding {
	if !isInternal(pkg) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig := fn.Type().(*types.Signature)
			if fn.Pkg().Path() == "math/rand" && sig.Recv() == nil && !seededRandAllowed[fn.Name()] {
				out = append(out, finding(pkg, "seededrand", call.Pos(),
					"rand.%s uses math/rand's global source; thread a rand.New(rand.NewSource(seed)) instead (replayability invariant)", fn.Name()))
				return true
			}
			// Time-derived seeds: time.Now anywhere inside the
			// arguments of NewSource / Seed calls.
			if (fn.Pkg().Path() == "math/rand" && (fn.Name() == "NewSource" || fn.Name() == "Seed")) ||
				(sig.Recv() != nil && fn.Name() == "Seed") {
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						c, ok := m.(*ast.CallExpr)
						if !ok {
							return true
						}
						if g := calleeFunc(pkg, c); g != nil && isPkgFunc(g, "time", "Now") {
							out = append(out, finding(pkg, "seededrand", c.Pos(),
								"seed derived from time.Now(): unrecordable, experiment cannot be replayed; take the seed from config"))
						}
						return true
					})
				}
			}
			return true
		})
	}
	return out
}
