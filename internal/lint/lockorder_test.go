package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestLockOrderGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/lockorder/inversion", "mlq/internal/journal"})
	checkGolden(t, LockOrder{}, pkg)
}

func TestLockOrderSkipsOutOfScope(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/lockorder/inversion", "mlq/internal/fixture/lockorder"})
	checkSilent(t, LockOrder{}, pkg)
}

// loadCrossPackageFixture loads the two-package lockorder fixture in ONE
// loader, so type objects are shared across the boundary exactly as the
// real module loader shares them.
func loadCrossPackageFixture(t *testing.T) []*Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, d := range []fixtureDir{
		{"testdata/src/lockorder/pkga", "mlq/internal/core"},
		{"testdata/src/lockorder/pkgb", "mlq/internal/replica"},
	} {
		abs, err := filepath.Abs(d.dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(abs, d.path)
		if err != nil {
			t.Fatalf("loading fixture %s as %s: %v", d.dir, d.path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestLockOrderCrossPackageCycle seeds a three-mutex cycle spanning two
// packages — core.A.Mu -> core.B.Mu directly, core.B.Mu -> replica.C.mu
// directly, replica.C.mu -> core.A.Mu only through a cross-package call —
// and asserts the reported cycle is found, deterministic, starts at the
// lexicographically smallest lock, and cites the canonical order.
func TestLockOrderCrossPackageCycle(t *testing.T) {
	pkgs := loadCrossPackageFixture(t)
	const wantCycle = "lock acquisition cycle core.A.Mu -> core.B.Mu -> replica.C.mu -> core.A.Mu"
	canonical := strings.Join(CanonicalLockOrder, " < ")

	var first []Finding
	for i := 0; i < 10; i++ {
		got := LockOrder{}.RunModule(pkgs)
		if len(got) != 1 {
			t.Fatalf("run %d: want exactly 1 finding, got %d: %v", i, len(got), got)
		}
		f := got[0]
		if !strings.Contains(f.Message, wantCycle) {
			t.Fatalf("run %d: message %q does not contain %q", i, f.Message, wantCycle)
		}
		if !strings.Contains(f.Message, canonical) {
			t.Fatalf("run %d: message %q does not cite the canonical order %q", i, f.Message, canonical)
		}
		// The finding anchors on the representative cycle's first edge:
		// core.A.Mu -> core.B.Mu, i.e. the b.Mu.Lock() inside pkga's LockAB.
		if base := filepath.Base(f.Pos.Filename); base != "a.go" {
			t.Fatalf("run %d: finding anchored in %s, want pkga/a.go", i, f.Pos.Filename)
		}
		if i == 0 {
			first = got
		} else if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: result differs from run 0:\n  first: %v\n  now:   %v", i, first, got)
		}
	}
}

// TestAtomicDisciplineCrossPackage: the atomic users of core.Shared live in
// one package, the racing plain read in another; only a module-wide pass
// can connect them.
func TestAtomicDisciplineCrossPackage(t *testing.T) {
	pkgs := loadCrossPackageFixture(t)
	got := AtomicDiscipline{}.RunModule(pkgs)
	if len(got) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(got), got)
	}
	f := got[0]
	if !strings.Contains(f.Message, "plain access races") {
		t.Errorf("message %q does not name the race", f.Message)
	}
	if base := filepath.Base(f.Pos.Filename); base != "b.go" {
		t.Errorf("finding anchored in %s, want the plain read in pkgb/b.go", f.Pos.Filename)
	}
}
