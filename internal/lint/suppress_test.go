package lint

import (
	"go/token"
	"testing"
)

// The span regression: a //lint:ignore above (or trailing on the first line
// of) a multi-line statement must cover every line of that statement and
// stop at its last line. Line numbers below index into
// testdata/src/suppressspan/a.go, which declares them load-bearing.

func TestSuppressionCoversStatementSpan(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/suppressspan", "mlq/internal/fixture/suppressspan"})
	sup := make(suppressions)
	collectSuppressions(pkg, sup)
	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename

	at := func(line int) token.Position {
		return token.Position{Filename: file, Line: line}
	}
	cases := []struct {
		line int
		want bool
		why  string
	}{
		{17, true, "the directive's own line"},
		{18, true, "first line of the covered statement"},
		{20, true, "panic three lines into the statement span"},
		{22, true, "last line of the statement span"},
		{23, false, "closing brace past the statement"},
		{31, false, "first statement past AfterSpan's covered span"},
		{37, true, "trailing directive on the statement's first line"},
		{39, true, "panic under the trailing directive's span"},
		{42, false, "past the trailing directive's statement"},
	}
	for _, c := range cases {
		if got := sup.matches("nopanic", at(c.line)); got != c.want {
			t.Errorf("line %d (%s): matches = %v, want %v", c.line, c.why, got, c.want)
		}
	}
	// The directive names nopanic only; other analyzers are not silenced
	// anywhere in its span.
	if sup.matches("chanowner", at(20)) {
		t.Error("span suppression leaked to an analyzer the directive does not name")
	}
}

// TestSuppressSpanGolden proves the span end to end through Run: the
// fixture's in-span panics carry no want markers and must stay silent,
// while the panic past the span is still reported.
func TestSuppressSpanGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/suppressspan", "mlq/internal/fixture/suppressspan"})
	checkGolden(t, NoPanic{}, pkg)
}

// TestSuppressionReasonTooShort pins the audit floor against the
// suppressshort fixture: one- and two-word justifications are flagged,
// exactly three words and above pass.
func TestSuppressionReasonTooShort(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/suppressshort", "mlq/internal/fixture/suppressshort"})
	sites := SuppressionSites([]*Package{pkg})
	if len(sites) != 4 {
		t.Fatalf("want 4 suppression sites, got %d: %v", len(sites), sites)
	}
	wantShort := []bool{true, false, true, false} // file order: 1, 5, 2, 3 words
	for i, s := range sites {
		if got := s.ReasonTooShort(); got != wantShort[i] {
			t.Errorf("site %d (line %d, reason %q): ReasonTooShort = %v, want %v",
				i, s.Pos.Line, s.Reason, got, wantShort[i])
		}
	}
}

func TestSuppressionSitesInventory(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/suppressspan", "mlq/internal/fixture/suppressspan"})
	sites := SuppressionSites([]*Package{pkg})
	if len(sites) != 3 {
		t.Fatalf("want 3 suppression sites, got %d: %v", len(sites), sites)
	}
	wantLines := []int{17, 27, 37}
	for i, s := range sites {
		if s.Pos.Line != wantLines[i] {
			t.Errorf("site %d at line %d, want %d (sorted by position)", i, s.Pos.Line, wantLines[i])
		}
		if len(s.Analyzers) != 1 || s.Analyzers[0] != "nopanic" {
			t.Errorf("site %d analyzers = %v, want [nopanic]", i, s.Analyzers)
		}
		if s.Reason == "" {
			t.Errorf("site %d has an empty reason", i)
		}
	}
}
