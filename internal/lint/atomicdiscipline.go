package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicDiscipline generalizes frozensnapshot's immutability contract to
// every atomically-published value in library code. Three rules:
//
//  1. Mixed access: a variable or field passed by address to a legacy
//     sync/atomic function (atomic.LoadInt64(&x), ...) is atomic state;
//     every other plain read or write of it races with the atomic users
//     and is flagged. The fix is usually the typed API (atomic.Int64),
//     which makes plain access impossible.
//  2. Wholesale overwrite: assigning over a value of a sync/atomic type
//     (x.counter = atomic.Int64{}) bypasses the atomicity the type
//     guarantees; use its Store method.
//  3. Load-then-mutate: writing through a pointer obtained from an atomic
//     Load (p.Load().field = v) mutates a published snapshot in place;
//     published values are copy-on-write and may only be swapped.
//
// It runs module-wide because atomic fields are frequently published by one
// package and read by another; the loader shares type objects across
// packages, so identity survives the boundary.
type AtomicDiscipline struct{}

// Name implements Analyzer.
func (AtomicDiscipline) Name() string { return "atomicdiscipline" }

// Doc implements Analyzer.
func (AtomicDiscipline) Doc() string {
	return "atomically-accessed state is never accessed plainly, and atomically-published values are swapped, not mutated"
}

// Run implements Analyzer; atomicdiscipline only runs module-wide.
func (AtomicDiscipline) Run(*Package) []Finding { return nil }

// RunModule implements ModuleAnalyzer.
func (AtomicDiscipline) RunModule(pkgs []*Package) []Finding {
	atomicObjs := make(map[types.Object]bool)
	sanctioned := make(map[token.Pos]bool)
	for _, pkg := range pkgs {
		if !isInternal(pkg) {
			continue
		}
		collectAtomicObjects(pkg, atomicObjs, sanctioned)
	}
	var out []Finding
	for _, pkg := range pkgs {
		if !isInternal(pkg) {
			continue
		}
		out = append(out, checkAtomicUses(pkg, atomicObjs, sanctioned)...)
	}
	return out
}

// collectAtomicObjects records every variable/field whose address is taken
// as the first argument of a legacy sync/atomic call, and the positions of
// the identifiers inside those calls (which are the sanctioned accesses).
func collectAtomicObjects(pkg *Package, objs map[types.Object]bool, sanctioned map[token.Pos]bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed-API method (Load/Store on atomic.Int64 etc.)
			}
			if !legacyAtomicFunc(fn.Name()) || len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			id, obj := leafUse(pkg, ue.X)
			if obj != nil {
				objs[obj] = true
				sanctioned[id.Pos()] = true
			}
			return true
		})
	}
}

func legacyAtomicFunc(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// checkAtomicUses applies all three rules to one package.
func checkAtomicUses(pkg *Package, objs map[types.Object]bool, sanctioned map[token.Pos]bool) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pkg.Info.Uses[n]
				if obj != nil && objs[obj] && !sanctioned[n.Pos()] {
					out = append(out, finding(pkg, "atomicdiscipline", n.Pos(),
						"%s is accessed via sync/atomic elsewhere; this plain access races with the atomic users (use the typed atomic API)",
						obj.Name()))
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if n.Tok != token.DEFINE && isAtomicType(typeOf(pkg, lhs)) {
						out = append(out, finding(pkg, "atomicdiscipline", lhs.Pos(),
							"assignment overwrites a sync/atomic value wholesale; use its Store method"))
					}
					if call := atomicLoadInChain(pkg, lhs); call != nil {
						out = append(out, finding(pkg, "atomicdiscipline", lhs.Pos(),
							"write through a pointer obtained from an atomic Load mutates a published value; copy and swap instead"))
					}
				}
			case *ast.IncDecStmt:
				if call := atomicLoadInChain(pkg, n.X); call != nil {
					out = append(out, finding(pkg, "atomicdiscipline", n.X.Pos(),
						"write through a pointer obtained from an atomic Load mutates a published value; copy and swap instead"))
				}
			}
			return true
		})
	}
	return out
}

// isAtomicType reports whether t is (a named type from) package sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicLoadInChain walks an lvalue's access chain (selectors, indexes,
// derefs) toward its base; if the base is a call to a sync/atomic Load
// method, the lvalue aliases a published value and writing through it is a
// rule-3 violation.
func atomicLoadInChain(pkg *Package, e ast.Expr) *ast.CallExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Name() == "Load" {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// leafUse resolves an expression to the identifier and object it names:
// a bare identifier or the field of a selector chain.
func leafUse(pkg *Package, e ast.Expr) (*ast.Ident, types.Object) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e, pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		return e.Sel, pkg.Info.Uses[e.Sel]
	}
	return nil, nil
}
