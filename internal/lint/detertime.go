package lint

import (
	"go/ast"
)

// DeterTime enforces plan determinism: given the same trace of observed
// costs, the engine must order predicates the same way, the optimizer must
// pick the same plan, and the quadtree must make the same compression
// decisions. time.Now() in those code paths makes a plan choice depend on
// wall-clock scheduling noise, which is impossible to replay or debug.
//
// Scope is the decision packages only (engine, optimizer, quadtree). Pure
// measurement sites inside them — stopwatches around work that already
// happened, feeding the paper's APC/AUC accounting rather than any decision
// — are suppressed inline with //lint:ignore detertime <reason>, keeping
// each exemption justified at the site.
type DeterTime struct{}

func (DeterTime) Name() string { return "detertime" }
func (DeterTime) Doc() string {
	return "no time.Now() in planning/decision code paths (plan determinism invariant)"
}

// deterTimePackages are the decision code paths under the rule.
var deterTimePackages = map[string]bool{
	"mlq/internal/engine":    true,
	"mlq/internal/optimizer": true,
	"mlq/internal/quadtree":  true,
}

func (DeterTime) Run(pkg *Package) []Finding {
	if !deterTimePackages[pkg.Path] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pkg, call); fn != nil && isPkgFunc(fn, "time", "Now") {
				out = append(out, finding(pkg, "detertime", call.Pos(),
					"time.Now() in a planning/decision code path; plan choice must be deterministic given a trace"))
			}
			return true
		})
	}
	return out
}
