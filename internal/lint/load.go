package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns directory patterns into type-checked Packages using only
// the standard library: go/parser for syntax and go/types for semantics.
// Imports inside the module are resolved by mapping the import path onto the
// module directory tree (module path "mlq" + "/internal/geom" ->
// <root>/internal/geom); standard-library imports are resolved by the
// compiler-independent source importer, which type-checks $GOROOT/src
// directly. Nothing shells out to the go tool, so mlqlint runs anywhere the
// repo checks out.
//
// Test files (*_test.go) are deliberately excluded: the invariants mlqlint
// enforces are library/production contracts, and test code is allowed to
// panic, use fixed inline randomness, and drop errors under t.Fatal's watch.

// Loader loads and type-checks packages of a single module.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string
	modulePath string

	pkgs   map[string]*Package // keyed by import path
	types  map[string]*types.Package
	stdlib types.Importer
	active map[string]bool // import-cycle guard
}

// NewLoader returns a loader rooted at the module containing dir (the
// nearest ancestor with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		pkgs:       make(map[string]*Package),
		types:      make(map[string]*types.Package),
		stdlib:     importer.ForCompiler(fset, "source", nil),
		active:     make(map[string]bool),
	}, nil
}

// ModulePath returns the module path from go.mod (e.g. "mlq").
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the absolute directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// findModule walks upward from dir to the nearest go.mod and parses its
// module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	//lint:ignore boundedretry walks up a finite directory tree; the filepath.Dir fixpoint check below terminates at the root
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// Load resolves the given patterns into type-checked packages. A pattern is
// either a directory path (absolute, or relative to the loader's module
// root) or such a path followed by "/..." for a recursive walk. The special
// patterns "./..." and "..." walk the whole module.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, p
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.moduleRoot, pat)
		}
		pat = filepath.Clean(pat)
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}

	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// importPathFor maps a module-relative directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the non-test files of the package in dir,
// registering it under the given import path. Used directly by the analyzer
// golden tests, whose testdata directories live outside the normal walk.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.active[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.active[importPath] = true
	defer delete(l.active, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, typeErrs[0])
	}
	l.types[importPath] = tpkg

	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter resolves imports during type checking: module-internal
// paths recurse into the loader, everything else goes to the stdlib source
// importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(im)
	if tp, ok := l.types[path]; ok {
		return tp, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		if _, err := l.LoadDir(filepath.Join(l.moduleRoot, filepath.FromSlash(rel)), path); err != nil {
			return nil, err
		}
		return l.types[path], nil
	}
	return l.stdlib.Import(path)
}
