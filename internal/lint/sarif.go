package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output for CI: the lint job uploads this so findings surface
// as inline PR annotations. Only the subset of the schema the upload
// endpoint consumes is emitted — tool metadata, rule descriptors, and one
// result per finding with a physical location.
const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log. Every analyzer
// becomes a rule descriptor (so rules with zero findings still document
// themselves in the run); file paths are made root-relative with forward
// slashes, the artifactLocation convention CI annotators expect.
func WriteSARIF(w io.Writer, analyzers []Analyzer, findings []Finding, root string) error {
	rules := make([]sarifRule, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name(), ShortDescription: sarifMessage{Text: a.Doc()}}
		index[a.Name()] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mlqlint", Rules: rules}},
			Results: results,
		}},
	})
}
