package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load fixture packages from testdata/src (which the
// normal "./..." walk skips) under synthetic import paths, so the
// package-path scope rules — internal-only analyzers, the detertime
// decision-package list, the nopanic allowlist — apply to fixtures exactly
// as they do to real code. Expected findings are marked in the fixtures
// with trailing `// want "substring"` comments on the offending line;
// suppression via //lint:ignore is exercised by fixture sites that violate
// a rule but carry no want marker.

// fixtureDir pairs a testdata directory with the import path the fixture
// is registered under.
type fixtureDir struct {
	dir  string // relative to this package directory
	path string // synthetic import path
}

// loadFixture type-checks the dependency fixtures and then the target with
// a fresh loader, returning the target package.
func loadFixture(t *testing.T, target fixtureDir, deps ...fixtureDir) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range append(deps, target) {
		abs, err := filepath.Abs(d.dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.LoadDir(abs, d.path); err != nil {
			t.Fatalf("loading fixture %s as %s: %v", d.dir, d.path, err)
		}
	}
	abs, _ := filepath.Abs(target.dir)
	pkg, err := l.LoadDir(abs, target.path)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type wantKey struct {
	file string
	line int
}

// collectWants scans the fixture sources for `// want "substring"` markers.
func collectWants(pkg *Package) map[wantKey]string {
	wants := make(map[wantKey]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := wantRe.FindStringSubmatch(c.Text); m != nil {
					pos := pkg.Fset.Position(c.Pos())
					wants[wantKey{pos.Filename, pos.Line}] = m[1]
				}
			}
		}
	}
	return wants
}

// checkGolden runs one analyzer over the fixture (through Run, so
// //lint:ignore suppression applies) and diffs findings against the want
// markers: every finding must land on a marked line whose substring it
// contains, and every marker must be hit exactly once.
func checkGolden(t *testing.T, a Analyzer, pkg *Package) {
	t.Helper()
	got := Run([]*Package{pkg}, []Analyzer{a})
	wants := collectWants(pkg)
	matched := make(map[wantKey]bool)
	for _, f := range got {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		want, ok := wants[k]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if matched[k] {
			t.Errorf("duplicate finding on %s:%d: %s", k.file, k.line, f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("finding at %s:%d: message %q does not contain %q", k.file, k.line, f.Message, want)
		}
		matched[k] = true
	}
	for k, want := range wants {
		if !matched[k] {
			t.Errorf("missing finding at %s:%d (want %q)", k.file, k.line, want)
		}
	}
}

// checkSilent asserts the analyzer reports nothing for the fixture,
// regardless of want markers — used for scope cases where the same sources
// are loaded under an out-of-scope or allowlisted import path.
func checkSilent(t *testing.T, a Analyzer, pkg *Package) {
	t.Helper()
	for _, f := range Run([]*Package{pkg}, []Analyzer{a}) {
		t.Errorf("finding in out-of-scope fixture %s: %s", pkg.Path, f)
	}
}

func TestNoPanicGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/nopanic", "mlq/internal/fixture/nopanic"})
	checkGolden(t, NoPanic{}, pkg)
}

func TestNoPanicAllowlistedPackage(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/nopanic_exempt", "mlq/internal/geom/geomtest"})
	checkSilent(t, NoPanic{}, pkg)
}

func TestNoPanicSkipsNonInternal(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/nopanic_exempt", "mlq/cmd/fixture"})
	checkSilent(t, NoPanic{}, pkg)
}

func TestFloatGuardGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/floatguard", "mlq/internal/fixture/floatguard"})
	checkGolden(t, FloatGuard{}, pkg)
}

func TestSeededRandGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/seededrand", "mlq/internal/fixture/seededrand"})
	checkGolden(t, SeededRand{}, pkg)
}

func TestSeededRandSkipsNonInternal(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/seededrand", "mlq/cmd/fixture"})
	checkSilent(t, SeededRand{}, pkg)
}

func TestDeterTimeGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/detertime", "mlq/internal/engine"})
	checkGolden(t, DeterTime{}, pkg)
}

func TestDeterTimeSkipsOutOfScope(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/detertime", "mlq/internal/fixture/clock"})
	checkSilent(t, DeterTime{}, pkg)
}

func TestErrcheckCoreGolden(t *testing.T) {
	pkg := loadFixture(t,
		fixtureDir{"testdata/src/errcheck", "mlq/internal/fixture/errcheck"},
		fixtureDir{"testdata/src/catalog", "mlq/internal/fixture/catalog"})
	checkGolden(t, ErrcheckCore{}, pkg)
}

func TestFrozenSnapshotGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/frozensnapshot", "mlq/internal/quadtree"})
	checkGolden(t, FrozenSnapshot{}, pkg)
}

func TestFrozenSnapshotCoreGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/frozensnapshot_core", "mlq/internal/core"})
	checkGolden(t, FrozenSnapshot{}, pkg)
}

func TestFrozenSnapshotSkipsUnlistedTypes(t *testing.T) {
	// The same sources under a different import path define a Snapshot that
	// is not in the frozen list: writes to it are ordinary writes.
	pkg := loadFixture(t, fixtureDir{"testdata/src/frozensnapshot", "mlq/internal/fixture/frozensnapshot"})
	checkSilent(t, FrozenSnapshot{}, pkg)
}

func TestBoundedRetryGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/boundedretry", "mlq/internal/fixture/boundedretry"})
	checkGolden(t, BoundedRetry{}, pkg)
}

func TestBoundedRetrySkipsNonInternal(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/boundedretry", "mlq/cmd/fixture"})
	checkSilent(t, BoundedRetry{}, pkg)
}

func TestGoroutineLifeGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/goroutinelife", "mlq/internal/fixture/goroutinelife"})
	checkGolden(t, GoroutineLife{}, pkg)
}

func TestGoroutineLifeSkipsNonInternal(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/goroutinelife", "mlq/cmd/fixture"})
	checkSilent(t, GoroutineLife{}, pkg)
}

func TestAtomicDisciplineGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/atomicdiscipline", "mlq/internal/fixture/atomicdiscipline"})
	checkGolden(t, AtomicDiscipline{}, pkg)
}

func TestAtomicDisciplineSkipsNonInternal(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/atomicdiscipline", "mlq/cmd/fixture"})
	checkSilent(t, AtomicDiscipline{}, pkg)
}

func TestChanOwnerGolden(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/chanowner", "mlq/internal/fixture/chanowner"})
	checkGolden(t, ChanOwner{}, pkg)
}

func TestChanOwnerSkipsNonInternal(t *testing.T) {
	pkg := loadFixture(t, fixtureDir{"testdata/src/chanowner", "mlq/cmd/fixture"})
	checkSilent(t, ChanOwner{}, pkg)
}

func TestAnalyzerNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name() == "" || a.Doc() == "" {
			t.Errorf("analyzer %T has an empty name or doc", a)
		}
		if seen[a.Name()] {
			t.Errorf("duplicate analyzer name %q", a.Name())
		}
		seen[a.Name()] = true
	}
}
