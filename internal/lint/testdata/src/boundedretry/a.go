// Package fixture exercises the boundedretry analyzer. The golden test
// loads it under mlq/internal/fixture/boundedretry (in scope) and under
// mlq/cmd/fixture (out of scope, no findings).
package fixture

import (
	"errors"
	"time"
)

var errTransient = errors.New("transient")

func op() error { return errTransient }

func read() ([]byte, error) { return nil, errTransient }

// HotSpin retries forever with no budget of any kind.
func HotSpin() []byte {
	for { // want "retry loop without an attempt bound or backoff/deadline"
		data, err := read()
		if err != nil {
			continue
		}
		return data
	}
}

// SpinUntilNil keeps the retry in the loop condition; still unbounded.
func SpinUntilNil() {
	err := op()
	for err != nil { // want "retry loop without an attempt bound or backoff/deadline"
		err = op()
	}
}

// BoundedAttempts caps the number of tries: compliant.
func BoundedAttempts(max int) error {
	var err error
	for attempt := 0; attempt < max; attempt++ {
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

// InnerBound keeps the cap inside the body (the buffercache readThrough
// shape, `for attempt := 1; ; attempt++`): compliant.
func InnerBound(attempts int) error {
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if attempt >= attempts {
			return err
		}
	}
}

// DeadlineBudget abandons the lookup once modeled latency overruns the
// deadline: compliant via the Duration comparison.
func DeadlineBudget(deadline time.Duration) error {
	var lat time.Duration
	backoff := time.Millisecond
	for {
		if err := op(); err == nil {
			return nil
		}
		if lat+backoff > deadline {
			return errTransient
		}
		lat += backoff
		backoff *= 2
	}
}

// SleepBackoff paces the retry with a real sleep: compliant.
func SleepBackoff() {
	for {
		if err := op(); err == nil {
			return
		}
		time.Sleep(time.Second)
	}
}

// SelectPaced blocks on a channel each round (ticker/cancellation shape):
// compliant.
func SelectPaced(tick, stop chan struct{}) error {
	for {
		if err := op(); err == nil {
			return nil
		}
		select {
		case <-tick:
		case <-stop:
			return errTransient
		}
	}
}

// DrainStream consumes a finite stream; the error path exits the loop, so
// this propagates faults rather than retrying them.
func DrainStream() error {
	for {
		data, err := read()
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return nil
		}
	}
}

// ElseReturn exits on the error path via the else branch: not a retry.
func ElseReturn() error {
	for {
		if err := op(); err == nil {
			break
		} else {
			return err
		}
	}
	return nil
}

// RangeDrain retries each element but is bounded by the collection; range
// loops are out of scope.
func RangeDrain(ids []int) int {
	ok := 0
	for range ids {
		if err := op(); err != nil {
			continue
		}
		ok++
	}
	return ok
}

// ClosureErrors spawns workers whose error handling belongs to the closure,
// not to this loop: not retry-shaped.
func ClosureErrors(n int) {
	i := 0
	for {
		if i >= n {
			return
		}
		i++
		go func() {
			if err := op(); err != nil {
				return
			}
		}()
	}
}

type conn struct{}

func (*conn) recv() (Record, error) { return Record{}, errTransient }

// Record stands in for a replication stream record.
type Record struct{ Seq uint64 }

func dial() (*conn, error) { return nil, errTransient }

// StreamReconnectSpin re-dials a replication stream forever: a partitioned
// peer spins this loop at full speed. The streaming shape (dial, then an
// inner receive loop) must not hide the unbounded outer retry.
func StreamReconnectSpin(apply func(Record)) {
	for { // want "retry loop without an attempt bound or backoff/deadline"
		c, err := dial()
		if err != nil {
			continue
		}
		for {
			rec, err := c.recv()
			if err != nil {
				break // reconnect
			}
			apply(rec)
		}
	}
}

// StreamReconnectBounded caps the consecutive failed dials and resets the
// budget on progress (the replica catch-up shape): compliant.
func StreamReconnectBounded(attempts int, apply func(Record)) error {
	for attempt := 1; ; attempt++ {
		c, err := dial()
		if err != nil {
			if attempt >= attempts {
				return err
			}
			continue
		}
		for {
			rec, err := c.recv()
			if err != nil {
				break // reconnect with remaining budget
			}
			apply(rec)
			attempt = 0 // progress restores the dial budget
		}
	}
}

// StreamReconnectPaced blocks on a ticker/cancellation select between
// dials: compliant via pacing.
func StreamReconnectPaced(tick, stop chan struct{}, apply func(Record)) error {
	for {
		c, err := dial()
		if err == nil {
			for {
				rec, err := c.recv()
				if err != nil {
					break
				}
				apply(rec)
			}
		}
		select {
		case <-tick:
		case <-stop:
			return errTransient
		}
	}
}

// SetReadDeadline re-arms an I/O deadline each pass.
func (*conn) SetReadDeadline(t time.Time) error { return nil }

// DeadlineArmedReadLoop re-arms a per-read deadline every iteration (the
// socket-transport frame pump shape): each pass blocks until bytes arrive
// or the deadline expires as an error, so a persistent fault terminates the
// loop instead of spinning it. Compliant via the deadline call.
func DeadlineArmedReadLoop(c *conn, apply func(Record)) {
	for {
		_ = c.SetReadDeadline(time.Now().Add(time.Second))
		rec, err := c.recv()
		if err != nil {
			continue // damaged frame: skip it, the stream stays aligned
		}
		apply(rec)
	}
}

// JustifiedSpin violates the rule but carries a justified suppression.
func JustifiedSpin() {
	//lint:ignore boundedretry fixture: simulated wait loop, fault cleared by test harness
	for {
		if err := op(); err == nil {
			return
		}
	}
}
