// Package fixture exercises the atomicdiscipline analyzer: the golden test
// loads it as mlq/internal/fixture/atomicdiscipline (in scope); the skip
// test reloads it as mlq/cmd/fixture and expects silence.
package fixture

import "sync/atomic"

type counters struct {
	legacy int64        // accessed via legacy atomic functions below
	typed  atomic.Int64 // the typed API: plain access is impossible
}

// AtomicUsers is the sanctioned access pattern for counters.legacy; these
// calls are what put the field under atomic discipline.
func AtomicUsers(c *counters) int64 {
	atomic.AddInt64(&c.legacy, 1)
	return atomic.LoadInt64(&c.legacy)
}

// PlainRead races with AtomicUsers.
func PlainRead(c *counters) int64 {
	return c.legacy // want "plain access races"
}

// PlainWrite races the same way.
func PlainWrite(c *counters) {
	c.legacy = 0 // want "plain access races"
}

// TypedIsFine: the typed API cannot be accessed plainly, so there is
// nothing to flag.
func TypedIsFine(c *counters) int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// OverwriteAtomic replaces the whole atomic value, bypassing its
// atomicity.
func OverwriteAtomic(c *counters) {
	c.typed = atomic.Int64{} // want "Store method"
}

type snap struct{ n int }

type holder struct{ cur atomic.Pointer[snap] }

// SwapIsFine publishes a fresh snapshot: the only legal way to update.
func SwapIsFine(h *holder, s *snap) {
	h.cur.Store(s)
}

// MutateLoaded writes through the published pointer: every lock-free
// reader sees the tear.
func MutateLoaded(h *holder) {
	h.cur.Load().n = 7 // want "copy and swap"
}

// CopyThenSwap is the sanctioned read-modify-publish sequence.
func CopyThenSwap(h *holder) {
	next := *h.cur.Load()
	next.n++
	h.cur.Store(&next)
}

// SuppressedInit documents a constructor-time plain write that cannot race
// because the value has not escaped yet.
func SuppressedInit() *counters {
	c := &counters{}
	//lint:ignore atomicdiscipline fixture: constructor runs before the value escapes to any goroutine
	c.legacy = 1
	return c
}
