// Package fixture exercises the floatguard analyzer.
package fixture

import "math"

const eps = 1e-9

// BadEq compares floats for equality.
func BadEq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// BadNeq compares floats for inequality.
func BadNeq(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

// GoodEpsilon compares with a tolerance.
func GoodEpsilon(a, b float64) bool {
	return math.Abs(a-b) < eps
}

// GoodInt compares integers, which is exact.
func GoodInt(a, b int) bool {
	return a == b
}

// goodConst compares two compile-time constants, which is exact by
// definition.
const goodConst = 0.5 == 0.25*2

// SentinelJustified documents an exact-zero sentinel with a reason, which
// suppresses the comparison finding.
func SentinelJustified(v float64) float64 {
	//lint:ignore floatguard fixture: exact zero is the documented sentinel
	if v == 0 {
		return 1
	}
	return v
}

// PredictBad returns a cost with no finite-ness guard on its return path.
func PredictBad(xs []float64) float64 { // want "PredictBad returns a cost without"
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// PredictGood guards its return value with the math predicates.
func PredictGood(xs []float64) (float64, bool) {
	var s float64
	for _, x := range xs {
		s += x
	}
	v := s / float64(len(xs))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// PredictDelegate hands its float results straight through to a guarded
// cost-producing delegate; the guard lives there.
func PredictDelegate(xs []float64) (float64, bool) {
	v, ok := PredictGood(xs)
	return v, ok
}

// EstimateCount returns no float and is outside rule 2's scope.
func EstimateCount(xs []float64) int {
	return len(xs)
}
