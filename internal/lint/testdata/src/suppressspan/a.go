// Package fixture exercises the //lint:ignore statement-span rule: a
// directive above a multi-line statement covers every line of that
// statement, and nothing past it. The nopanic cases prove it end to end
// through Run; suppress_test.go additionally asserts the covered line
// ranges directly. Line numbers are load-bearing — keep the layout stable
// or update suppress_test.go.
package fixture

func recover2(f func()) { // the harness recovers panics from f
	defer func() { _ = recover() }()
	f()
}

// WrappedCallback: the panic sits on the third line of a single multi-line
// ExprStmt; the directive above the statement must cover it.
func WrappedCallback() {
	//lint:ignore nopanic fixture: the harness recovers this deliberate panic
	recover2(
		func() {
			panic("line three of the statement span")
		},
	)
}

// AfterSpan proves the directive stops at the statement's last line.
func AfterSpan() {
	//lint:ignore nopanic fixture: covers only the next statement
	recover2(
		func() {},
	)
	panic("first line past the span is not covered") // want "panic in internal library code"
}

// TrailingDirective sits on the first line of a multi-line statement and
// still covers the whole span.
func TrailingDirective() {
	recover2( //lint:ignore nopanic fixture: trailing placement spans the statement too
		func() {
			panic("covered by the trailing directive")
		},
	)
}
