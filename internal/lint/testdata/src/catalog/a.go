// Package catalog is a dependency fixture registered under an import path
// ending in /catalog, so errcheck-core's SaveFile/LoadFile seam matching
// applies to calls into it.
package catalog

import "os"

// Catalog is a minimal stand-in store.
type Catalog struct{}

// SaveFile persists the catalog to a file.
func SaveFile(path string, c *Catalog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a catalog back from a file.
func LoadFile(path string) (*Catalog, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return &Catalog{}, nil
}
