// Package fixture exercises the nopanic analyzer: the golden test loads it
// under the import path mlq/internal/fixture/nopanic, putting it in scope.
package fixture

import "errors"

// Bad panics in library code.
func Bad(ok bool) {
	if !ok {
		panic("invariant broken") // want "panic in internal library code"
	}
}

// Good reports the same failure as an error value.
func Good(ok bool) error {
	if !ok {
		return errors.New("invariant broken")
	}
	return nil
}

// MissingReason shows that a reason-less ignore comment does not suppress.
func MissingReason() {
	//lint:ignore nopanic
	panic("still flagged") // want "panic in internal library code"
}

// Justified shows that an ignore with a reason does suppress.
func Justified() {
	//lint:ignore nopanic fixture: justified suppressions are honored
	panic("suppressed")
}

// ShadowedPanic calls a local function value named panic — not the builtin,
// so it is clean.
func ShadowedPanic() {
	panic := func(string) {}
	panic("not the builtin")
}
