// Package fixture exercises the seededrand analyzer: the golden test loads
// it under mlq/internal/fixture/seededrand (in scope) and under
// mlq/cmd/fixture (out of scope, no findings).
package fixture

import (
	"math/rand"
	"time"
)

// BadGlobal draws from the process-wide source.
func BadGlobal() int {
	return rand.Intn(10) // want "rand.Intn uses math/rand's global source"
}

// BadClockSeed derives a seed from the wall clock.
func BadClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seed derived from time.Now"
}

// BadReseed reseeds an explicit generator from the clock.
func BadReseed(r *rand.Rand) {
	r.Seed(time.Now().UnixNano()) // want "seed derived from time.Now"
}

// Good threads an explicit generator built from a recorded config seed.
func Good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
