// Fixture for the frozensnapshot analyzer, loaded as mlq/internal/core:
// epochState is the cell the publisher's atomic pointer shares with
// readers, so republication must build a fresh value.
package core

type epochState struct {
	epoch uint64
}

func republishInPlace(st *epochState) {
	st.epoch++ // want "frozen"
}

func patchCurrent(st *epochState, e uint64) {
	st.epoch = e // want "frozen"
}

func freshValueIsFine(prev *epochState) *epochState {
	return &epochState{epoch: prev.epoch + 1}
}
