// Package suppressshort fixes the suppression-reason audit: a //lint:ignore
// justification under three words is flagged as too short, three or more
// words pass. Line positions are load-bearing for suppress_test.go.
package suppressshort

func oneWord() {
	//lint:ignore nopanic unreachable
	panic("flagged: a single word names no invariant")
}

func fiveWords() {
	//lint:ignore nopanic boot-time invariant violation is unrecoverable
	panic("passes: a real justification")
}

func twoWords() {
	//lint:ignore nopanic cannot happen
	panic("flagged: two words explain nothing")
}

func exactlyThree() {
	//lint:ignore nopanic documented startup invariant
	panic("passes: exactly at the floor")
}
