// Package fixture exercises the errcheck-core analyzer.
package fixture

import (
	"mlq/internal/fixture/catalog"
)

// Model is a stand-in with the watched Observe/Execute seams.
type Model struct{}

// Observe records one observation.
func (m *Model) Observe(x, cost float64) error { return nil }

// Execute runs the UDF, returning its measured cost.
func (m *Model) Execute(x float64) (float64, error) { return x, nil }

// BadDrops discards the error at every watched seam.
func BadDrops(m *Model, c *catalog.Catalog) float64 {
	m.Observe(1, 2)              // want "Observe error is dropped"
	_ = m.Observe(3, 4)          // want "Observe error is dropped"
	go m.Observe(5, 6)           // want "Observe error is dropped"
	cost, _ := m.Execute(7)      // want "Execute error is dropped"
	catalog.SaveFile("x.gob", c) // want "catalog.SaveFile error is dropped"
	return cost
}

// GoodChecks handles every error.
func GoodChecks(m *Model, c *catalog.Catalog) (float64, error) {
	if err := m.Observe(1, 2); err != nil {
		return 0, err
	}
	cost, err := m.Execute(7)
	if err != nil {
		return 0, err
	}
	if err := catalog.SaveFile("x.gob", c); err != nil {
		return 0, err
	}
	if _, err := catalog.LoadFile("x.gob"); err != nil {
		return 0, err
	}
	return cost, nil
}
