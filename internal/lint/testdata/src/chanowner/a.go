// Package fixture exercises the chanowner analyzer: the golden test loads
// it as mlq/internal/fixture/chanowner (in scope); the skip test reloads it
// as mlq/cmd/fixture and expects silence.
package fixture

type worker struct {
	quit chan struct{}
	out  chan int
}

// Produce sends under a select with a quit alternative: the canonical
// guarded send.
func (w *worker) Produce(v int) {
	select {
	case w.out <- v:
	case <-w.quit:
	}
}

// ProduceNonBlocking uses a default case instead.
func (w *worker) ProduceNonBlocking(v int) {
	select {
	case w.out <- v:
	default:
	}
}

// NakedSend can wedge forever once the receiver stops.
func (w *worker) NakedSend(v int) {
	w.out <- v // want "blocking send outside select"
}

// SingleCaseSelect is a naked send in select clothing.
func (w *worker) SingleCaseSelect(v int) {
	select {
	case w.out <- v: // want "single-case select"
	}
}

// Stop is quit's single closing owner: fine.
func (w *worker) Stop() {
	close(w.quit)
}

type doubleCloser struct{ ch chan int }

// CloseA and CloseB both close the same channel: the double-close shape is
// flagged at every site.
func (d *doubleCloser) CloseA() {
	close(d.ch) // want "exactly one closing owner"
}

func (d *doubleCloser) CloseB() {
	close(d.ch) // want "exactly one closing owner"
}

// ReplySlot documents a bounded handoff: a cap-1 buffer the single send
// can never block on.
func ReplySlot() chan error {
	done := make(chan error, 1)
	//lint:ignore chanowner fixture: cap-1 reply slot, exactly one send, can never block
	done <- nil
	return done
}
