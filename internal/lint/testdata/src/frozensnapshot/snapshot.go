// Fixture for the frozensnapshot analyzer, loaded as mlq/internal/quadtree
// so the frozen-type list applies: a minimal arena + Snapshot mirroring the
// real package's shape, plus the write sites the rule must and must not
// flag.
package quadtree

type kidRef struct {
	idx uint32
	ref int32
}

type node struct {
	sum   float64
	count int64
}

type arena struct {
	nodes []node
	kids  []kidRef
}

func (a *arena) addChild(parent int32, idx uint32) int32 {
	a.kids = append(a.kids, kidRef{idx: idx, ref: int32(len(a.nodes))})
	a.nodes = append(a.nodes, node{})
	return int32(len(a.nodes) - 1)
}

func (a *arena) child(n int32, idx uint32) int32 {
	for _, k := range a.kids {
		if k.idx == idx {
			return k.ref
		}
	}
	return -1
}

func (a *arena) add(n int32, v float64) {
	a.nodes[n].sum += v
	a.nodes[n].count++
}

// Snapshot mirrors the real immutable snapshot: arena by value plus frozen
// counters.
type Snapshot struct {
	a         arena
	nodeCount int
}

func (s *Snapshot) NodeCount() int { return s.nodeCount }

func mutateField(s *Snapshot) {
	s.nodeCount = 1 // want "frozen"
}

func mutateDeep(s *Snapshot) {
	s.a.nodes[0].sum = 2  // want "frozen"
	s.a.nodes[0].sum += 2 // want "frozen"
	s.a.nodes[0].count++  // want "frozen"
	s.a.kids[0].idx = 3   // want "frozen"
}

func mutateWhole(s *Snapshot) {
	*s = Snapshot{} // want "frozen"
}

func mutateViaArenaMethod(s *Snapshot) {
	s.a.addChild(0, 1) // want "mutating arena method"
	s.a.add(0, 3.5)    // want "mutating arena method"
}

// readsAreFine: lookups, field reads, and rebinding the variable itself are
// not writes through the snapshot.
func readsAreFine(s *Snapshot, other *Snapshot) (int32, int) {
	c := s.a.child(0, 1)
	n := s.nodeCount
	s = other
	_ = s
	return c, n
}

// treeMutationIsFine: the same writes against a plain arena (the mutable
// tree) are the normal insert path and stay legal.
func treeMutationIsFine(a *arena) {
	a.nodes[0].sum = 1
	a.nodes[0].count++
	a.addChild(0, 2)
	a.add(0, 1.5)
}

// constructionIsFine: composite literals build the frozen value; freezing
// starts after.
func constructionIsFine(a arena) *Snapshot {
	return &Snapshot{a: a, nodeCount: len(a.nodes)}
}

// suppressedWrite: a justified //lint:ignore at the site silences the rule.
func suppressedWrite(s *Snapshot) {
	//lint:ignore frozensnapshot fixture: exercising suppression
	s.nodeCount = 7
}
