// Package fixture panics unconditionally. The golden tests load it twice:
// once under the allowlisted path mlq/internal/geom/geomtest and once under
// the non-internal path mlq/cmd/fixture — nopanic must stay silent both
// times.
package fixture

// MustSomething panics on malformed input, the shape of a test-support
// helper.
func MustSomething(ok bool) {
	if !ok {
		panic("exempt site")
	}
}
