// Package fixture exercises lockorder's single-package cases. The golden
// test loads it as mlq/internal/journal (in scope); the scope test reloads
// the same sources as mlq/internal/fixture/lockorder and expects silence.
package fixture

import "sync"

// X and Y form a two-lock inversion; Z self-deadlocks; P and Q form a
// second inversion whose report is suppressed with a justified ignore.
type X struct{ mu sync.Mutex }

type Y struct{ mu sync.Mutex }

type Z struct{ mu sync.Mutex }

type P struct{ mu sync.Mutex }

type Q struct{ mu sync.Mutex }

// LockXY acquires X then Y. Together with LockYX this is a cycle; the
// finding lands on the earliest edge of the representative cycle, which
// starts at the lexicographically smallest lock (fixture.X.mu).
func LockXY(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want "lock acquisition cycle fixture.X.mu -> fixture.Y.mu -> fixture.X.mu"
	y.mu.Unlock()
}

// LockYX acquires the same pair in the opposite order.
func LockYX(x *X, y *Y) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}

// Reacquire locks a mutex it already holds: sync.Mutex is not reentrant,
// so this is a guaranteed self-deadlock, reported as a self-cycle.
func Reacquire(z *Z) {
	z.mu.Lock()
	z.mu.Lock() // want "lock acquisition cycle fixture.Z.mu -> fixture.Z.mu"
	z.mu.Unlock()
	z.mu.Unlock()
}

// LockPQ / LockQP invert like X/Y, but the representative edge carries a
// justified suppression, so no finding surfaces.
func LockPQ(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:ignore lockorder fixture: justified suppressions silence cycle reports
	q.mu.Lock()
	q.mu.Unlock()
}

func LockQP(p *P, q *Q) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// BranchesBalance shows the branch-aware simulation: both arms release Y
// before X is taken again in canonical order, so no inversion exists.
func BranchesBalance(x *X, y *Y, cond bool) {
	x.mu.Lock()
	if cond {
		y.mu.Lock()
		y.mu.Unlock()
	} else {
		y.mu.Lock()
		y.mu.Unlock()
	}
	x.mu.Unlock()
}

// LocalMutexIgnored uses a function-local mutex: no cross-function order
// can exist for it, so it is untracked.
func LocalMutexIgnored() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// ClosureDoesNotInherit spawns work in a goroutine: the held set does not
// leak into the closure, so Y-then-X inside it (relative to the X the
// spawner holds) is not an inversion.
func ClosureDoesNotInherit(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	go func(y *Y) {
		y.mu.Lock()
		y.mu.Unlock()
	}(y)
}
