// Package replica is the second half of the cross-package lockorder
// fixture, loaded as mlq/internal/replica. Holding C.mu it both acquires
// core.B.Mu's successor edge directly and calls back into core.GrabA,
// closing the seeded cycle core.A.Mu -> core.B.Mu -> replica.C.mu ->
// core.A.Mu. The analyzer must stitch these edges across the package
// boundary and report one deterministic cycle.
package replica

import (
	"sync"

	"mlq/internal/core"
)

// C owns the replica-side lock in the seeded cycle.
type C struct{ mu sync.Mutex }

// LockBC acquires core.B.Mu then C.mu: the edge core.B.Mu -> replica.C.mu.
func LockBC(b *core.B, c *C) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// CallbackUnderC holds C.mu across a call into core.GrabA, adding the
// transitive edge replica.C.mu -> core.A.Mu that completes the cycle.
func CallbackUnderC(a *core.A, c *C) {
	c.mu.Lock()
	defer c.mu.Unlock()
	core.GrabA(a)
}

// ReadShared reads core.Shared plainly; the atomic users live in the core
// fixture, so only a module-wide pass can connect the two.
func ReadShared() int64 {
	return core.Shared
}
