// Package core seeds the cross-package half of the lockorder golden tests.
// The test loads it under the import path mlq/internal/core, putting it in
// lockorder's scope; its package name becomes the lock-ID prefix. It
// contributes the edge core.A.Mu -> core.B.Mu and exports GrabA, which the
// replica-side fixture calls while holding its own lock to close a
// three-mutex cycle spanning the package boundary.
package core

import (
	"sync"
	"sync/atomic"
)

// A and B are lock-bearing structs; their mutexes are exported so the
// companion fixture package can extend the acquisition graph.
type A struct{ Mu sync.Mutex }

type B struct{ Mu sync.Mutex }

// LockAB acquires A then B: the edge core.A.Mu -> core.B.Mu.
func LockAB(a *A, b *B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	b.Mu.Unlock()
}

// GrabA acquires A alone. Called from the replica fixture under its lock,
// it completes the cycle transitively — the inversion is only visible once
// may-acquire sets propagate through the call graph.
func GrabA(a *A) {
	a.Mu.Lock()
	a.Mu.Unlock()
}

// Shared is accessed via sync/atomic here and plainly in the replica
// fixture: the cross-package atomicdiscipline test asserts the plain read
// is caught even though the atomic users live in a different package.
var Shared int64

// BumpShared is the sanctioned atomic writer for Shared.
func BumpShared() {
	atomic.AddInt64(&Shared, 1)
}
