// Package fixture exercises the goroutinelife analyzer: the golden test
// loads it as mlq/internal/fixture/goroutinelife (in scope); the skip test
// reloads it as mlq/cmd/fixture and expects silence.
package fixture

import "sync"

// SpinForever is the leak shape the analyzer exists for: an unconditional
// loop with no select, no close-observing receive, and no exit.
func SpinForever(work func()) {
	go func() { // want "no reachable shutdown path"
		for {
			work()
		}
	}()
}

// QuitChannel drains under a select with a quit case: the canonical
// shutdown idiom.
func QuitChannel(work func(), quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
}

// RangeOverChannel terminates when the owner closes the channel.
func RangeOverChannel(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// CommaOkReceive observes the close explicitly.
func CommaOkReceive(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// PlainReceiveLeaks never observes the close: a closed channel yields zero
// values forever, so the loop spins on.
func PlainReceiveLeaks(ch chan int) {
	go func() { // want "no reachable shutdown path"
		for {
			v := <-ch
			_ = v
		}
	}()
}

// BoundedLoop is finite by construction.
func BoundedLoop(work func()) {
	go func() {
		for i := 0; i < 8; i++ {
			work()
		}
	}()
}

// DirectBreak has a loop-exiting break, a reachable shutdown path.
func DirectBreak(done func() bool) {
	go func() {
		for {
			if done() {
				break
			}
		}
	}()
}

// NestedBreakDoesNotCount: the bare break exits the inner bounded loop,
// not the unconditional outer one.
func NestedBreakDoesNotCount(work func() bool) {
	go func() { // want "no reachable shutdown path"
		for {
			for i := 0; i < 3; i++ {
				if work() {
					break
				}
			}
		}
	}()
}

// WaitGroupTracked signals a WaitGroup: the spawner tracks its lifecycle,
// which the analyzer accepts as a shutdown contract.
func WaitGroupTracked(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			work()
		}
	}()
}

// pump's run loop receives without observing close: leak-shaped even when
// reached through a named method rather than a literal.
type pump struct{ inbox chan int }

func (p *pump) run() {
	for {
		v := <-p.inbox
		_ = v
	}
}

// StartPump resolves the go target to the method declaration above.
func StartPump(p *pump) {
	go p.run() // want "no reachable shutdown path"
}

// SuppressedDaemon documents a deliberate process-lifetime goroutine.
func SuppressedDaemon(work func()) {
	//lint:ignore goroutinelife fixture: process-lifetime daemon by design, reaped at exit
	go func() {
		for {
			work()
		}
	}()
}
