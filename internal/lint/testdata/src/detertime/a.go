// Package fixture exercises the detertime analyzer. The golden test loads
// it under mlq/internal/engine (a decision package, in scope) and under
// mlq/internal/fixture/clock (out of scope, no findings).
package fixture

import "time"

// BadDecision makes a choice depend on the wall clock.
func BadDecision(deadline time.Time) bool {
	return time.Now().After(deadline) // want "planning/decision code path"
}

// GoodMeasurement is a stopwatch around work that already happened; the
// justified ignore keeps the exemption at the site.
func GoodMeasurement(work func()) time.Duration {
	//lint:ignore detertime fixture: stopwatch feeding accounting only
	start := time.Now()
	work()
	return time.Since(start)
}
