package lint

import (
	"go/ast"
	"go/types"
)

// FrozenSnapshot enforces the immutability contract behind the lock-free
// read path (PR 4): a quadtree.Snapshot, once built, is shared by the
// epoch/snapshot publisher with any number of concurrently-running
// predictors, with no lock anywhere. The same holds for core's epochState,
// the cell the publisher's atomic pointer points at: re-publication must
// build a fresh value, never update the current one in place. Writing
// through either type is a data race the type system cannot see — Go
// happily lets the owning package assign to unexported fields — and the
// race detector only catches it when a test happens to interleave the
// write with a read.
//
// The rule flags, module-wide:
//
//   - assignments (including op-assign and ++/--) whose left-hand side
//     reaches through a value of a frozen type, e.g. s.nodeCount = 1 or
//     s.a.nodes[i].sum += x;
//   - writes through a pointer to a whole frozen value, *s = Snapshot{...};
//   - calls of the arena's mutating methods rooted at a frozen value,
//     e.g. s.a.addChild(...) — mutation by method is still mutation.
//
// Construction via composite literal (&Snapshot{...}, &epochState{...}) is
// untouched: freezing starts after the value exists. Laundering a field
// address through a local pointer first (nd := &s.a.nodes[i]; nd.sum = x)
// is beyond a syntactic rule's reach; the write sites this analyzer does
// see are the ones refactors actually produce. Genuinely safe writes —
// e.g. inside a constructor building a not-yet-published value — carry
// //lint:ignore frozensnapshot <reason> at the site.
type FrozenSnapshot struct{}

func (FrozenSnapshot) Name() string { return "frozensnapshot" }
func (FrozenSnapshot) Doc() string {
	return "published snapshots are immutable: no writes through quadtree.Snapshot or core.epochState"
}

// frozenTypes lists the named types whose reachable state is frozen after
// construction, by defining package.
var frozenTypes = map[string]map[string]bool{
	"mlq/internal/quadtree": {"Snapshot": true},
	"mlq/internal/core":     {"epochState": true},
}

// arenaMutators are the arena methods that write. Invoking one through a
// frozen root mutates shared state just as surely as a field assignment.
var arenaMutators = map[string]bool{
	"addChild":     true,
	"removeChild":  true,
	"add":          true,
	"compactKids":  true,
	"compactNodes": true,
}

func (FrozenSnapshot) Run(pkg *Package) []Finding {
	if !isInternal(pkg) {
		return nil
	}
	var out []Finding
	report := func(pos ast.Node, what string) {
		out = append(out, finding(pkg, "frozensnapshot", pos.Pos(),
			"%s reaches through a frozen type (published snapshots are immutable; build a fresh value instead)", what))
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if frozenChain(pkg, lhs) {
						report(lhs, "assignment")
					}
				}
			case *ast.IncDecStmt:
				if frozenChain(pkg, st.X) {
					report(st.X, "increment/decrement")
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
				if !ok || !arenaMutators[sel.Sel.Name] {
					return true
				}
				if fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func); fn == nil {
					return true // conversion or function-typed field, not a method
				}
				if frozenChain(pkg, sel.X) {
					report(st, "mutating arena method call")
				}
			}
			return true
		})
	}
	return out
}

// frozenChain reports whether expr is an access path (selector, index,
// dereference) any step of which has a frozen type. A bare identifier is
// never a violation: rebinding a variable that merely holds a snapshot
// does not write the snapshot.
func frozenChain(pkg *Package, expr ast.Expr) bool {
	first := true
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			first = false
			expr = e.X
		case *ast.IndexExpr:
			first = false
			expr = e.X
		case *ast.StarExpr:
			first = false
			expr = e.X
		default:
			if first {
				return false
			}
			return isFrozenType(typeOf(pkg, expr))
		}
		if !first && isFrozenType(typeOf(pkg, expr)) {
			return true
		}
	}
}

func typeOf(pkg *Package, expr ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// isFrozenType unwraps pointers and reports whether the named type is in
// the frozen list.
func isFrozenType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return frozenTypes[named.Obj().Pkg().Path()][named.Obj().Name()]
}
