package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife flags leak-shaped goroutines in library code: a go
// statement whose body spins in an unconditional loop with no reachable
// shutdown path. A loop is considered shut-down-able when it contains a
// select (the quit-channel idiom), a comma-ok channel receive (observes
// channel close), or a loop-exiting return/break; a goroutine whose body
// signals a sync.WaitGroup Done is considered lifecycle-tracked by its
// spawner. Goroutines ranging over a channel terminate when the owner
// closes it, and bodies without unconditional loops are bounded by
// construction — neither is flagged.
//
// Goroutines started through function values or interface methods are not
// resolvable statically and are skipped.
type GoroutineLife struct{}

// Name implements Analyzer.
func (GoroutineLife) Name() string { return "goroutinelife" }

// Doc implements Analyzer.
func (GoroutineLife) Doc() string {
	return "goroutines spawned by library code must have a reachable shutdown path"
}

// Run implements Analyzer.
func (GoroutineLife) Run(pkg *Package) []Finding {
	if !isInternal(pkg) {
		return nil
	}
	decls := funcDeclIndex(pkg)
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pkg, gs, decls)
			if body == nil {
				return true
			}
			if loop := leakShapedLoop(pkg, body); loop != nil {
				out = append(out, finding(pkg, "goroutinelife", gs.Pos(),
					"goroutine has no reachable shutdown path: unconditional loop at line %d never selects on a quit channel, observes a close, or exits",
					pkg.Fset.Position(loop.Pos()).Line))
			}
			return true
		})
	}
	return out
}

// funcDeclIndex maps each package-level function/method object to its
// declaration so `go pkgFunc(...)` and `go recv.method(...)` resolve to a
// body.
func funcDeclIndex(pkg *Package) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = fd
				}
			}
		}
	}
	return idx
}

// goBody resolves the body a go statement will run: an inline literal or a
// same-package declared function. nil when the target is not statically
// resolvable.
func goBody(pkg *Package, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	if fn := calleeFunc(pkg, gs.Call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// leakShapedLoop returns the first unconditional for-loop in body with no
// shutdown path, nil if the goroutine is well-shaped. Nested function
// literals are skipped throughout: they are not this goroutine's code.
func leakShapedLoop(pkg *Package, body *ast.BlockStmt) *ast.ForStmt {
	if signalsWaitGroup(pkg, body) {
		return nil
	}
	var bad *ast.ForStmt
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil || bad != nil {
			return true
		}
		if !loopHasShutdown(fs.Body) {
			bad = fs
		}
		return true
	})
	return bad
}

// signalsWaitGroup reports whether the body calls sync.WaitGroup.Done —
// the spawner tracks this goroutine's completion.
func signalsWaitGroup(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
			found = true
		}
		return true
	})
	return found
}

// loopHasShutdown reports whether an unconditional loop body can stop: a
// select statement, a comma-ok receive, or a statement that exits the loop
// (return, goto, a break belonging to this loop, or a labeled break).
func loopHasShutdown(body *ast.BlockStmt) bool {
	return stmtsCanStop(body.List, true)
}

func stmtsCanStop(stmts []ast.Stmt, direct bool) bool {
	for _, s := range stmts {
		if stmtCanStop(s, direct) {
			return true
		}
	}
	return false
}

// stmtCanStop walks one statement; direct tracks whether a bare break here
// still targets the unconditional loop (false once inside a nested
// for/range/switch/select, which capture bare breaks).
func stmtCanStop(s ast.Stmt, direct bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.SelectStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			return true
		case token.BREAK:
			return direct || s.Label != nil
		}
	case *ast.AssignStmt:
		// v, ok := <-ch observes the channel closing.
		if len(s.Lhs) == 2 && len(s.Rhs) == 1 {
			if ue, isRecv := s.Rhs[0].(*ast.UnaryExpr); isRecv && ue.Op == token.ARROW {
				return true
			}
		}
	case *ast.BlockStmt:
		return stmtsCanStop(s.List, direct)
	case *ast.LabeledStmt:
		return stmtCanStop(s.Stmt, direct)
	case *ast.IfStmt:
		if s.Init != nil && stmtCanStop(s.Init, direct) {
			return true
		}
		if stmtsCanStop(s.Body.List, direct) {
			return true
		}
		return s.Else != nil && stmtCanStop(s.Else, direct)
	case *ast.ForStmt:
		return stmtsCanStop(s.Body.List, false)
	case *ast.RangeStmt:
		return stmtsCanStop(s.Body.List, false)
	case *ast.SwitchStmt:
		if s.Init != nil && stmtCanStop(s.Init, direct) {
			return true
		}
		for _, c := range s.Body.List {
			if stmtsCanStop(c.(*ast.CaseClause).Body, false) {
				return true
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if stmtsCanStop(c.(*ast.CaseClause).Body, false) {
				return true
			}
		}
	}
	return false
}

// inspectSkipFuncLit is ast.Inspect that does not descend into function
// literals.
func inspectSkipFuncLit(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return f(n)
	})
}
