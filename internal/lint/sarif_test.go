package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// sarifShape mirrors the SARIF 2.1.0 subset CI consumes; decoding into it
// validates the emitted structure field by field.
type sarifShape struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestWriteSARIFShape(t *testing.T) {
	findings := []Finding{{
		Analyzer: "chanowner",
		Pos:      token.Position{Filename: "/mod/internal/replica/transport.go", Line: 256, Column: 2},
		Message:  "blocking send outside select",
	}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), findings, "/mod"); err != nil {
		t.Fatal(err)
	}
	var log sarifShape
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema is empty")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mlqlint" {
		t.Errorf("driver name = %q, want mlqlint", run.Tool.Driver.Name)
	}
	all := All()
	if len(run.Tool.Driver.Rules) != len(all) {
		t.Fatalf("want %d rule descriptors, got %d", len(all), len(run.Tool.Driver.Rules))
	}
	chanownerIdx := -1
	for i, a := range all {
		if run.Tool.Driver.Rules[i].ID != a.Name() {
			t.Errorf("rule %d id = %q, want %q", i, run.Tool.Driver.Rules[i].ID, a.Name())
		}
		if run.Tool.Driver.Rules[i].ShortDescription.Text != a.Doc() {
			t.Errorf("rule %q description mismatch", a.Name())
		}
		if a.Name() == "chanowner" {
			chanownerIdx = i
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "chanowner" || res.RuleIndex != chanownerIdx {
		t.Errorf("result rule = %q/%d, want chanowner/%d", res.RuleID, res.RuleIndex, chanownerIdx)
	}
	if res.Level != "error" {
		t.Errorf("level = %q, want error", res.Level)
	}
	if res.Message.Text != findings[0].Message {
		t.Errorf("message = %q", res.Message.Text)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("want 1 location, got %d", len(res.Locations))
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/replica/transport.go" {
		t.Errorf("uri = %q, want root-relative forward-slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 256 || loc.Region.StartColumn != 2 {
		t.Errorf("region = %+v, want 256:2", loc.Region)
	}
}

func TestWriteSARIFEmptyFindings(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), nil, ""); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	runs := raw["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"].([]any)
	if !ok {
		t.Fatal("results must be an empty array, not null: SARIF consumers reject null")
	}
	if len(results) != 0 {
		t.Fatalf("want 0 results, got %d", len(results))
	}
}
