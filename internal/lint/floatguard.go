package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatGuard enforces the finite-cost invariant of §4.2: the SSE/SSEG
// bookkeeping that drives compression corrupts silently once a NaN or Inf
// enters a node summary, and float equality is both NaN-hostile (NaN != NaN)
// and rounding-fragile. Two rules:
//
//  1. No ==/!= between floating-point expressions. Compare against an
//     epsilon, restructure, or — where exact equality is genuinely meant,
//     e.g. an untouched-sentinel check — suppress with a justified
//     //lint:ignore floatguard <reason>.
//
//  2. Cost-producing functions (Predict*/Estimate*/Execute* returning
//     floats) must guard their return path with math.IsNaN/math.IsInf (or a
//     recognized wrapper such as core.ValidCost), unless they are pure
//     delegators whose float results come directly from another
//     cost-producing call — the guard then lives in the delegate.
type FloatGuard struct{}

func (FloatGuard) Name() string { return "floatguard" }
func (FloatGuard) Doc() string {
	return "no float ==/!=; cost-returning functions must NaN/Inf-guard their return path (finite-cost invariant)"
}

func (FloatGuard) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if f := checkFloatEq(pkg, n); f != nil {
					out = append(out, *f)
				}
			case *ast.FuncDecl:
				if f := checkCostGuard(pkg, n); f != nil {
					out = append(out, *f)
				}
			}
			return true
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// typeHasFloat reports whether t is a float or a tuple (multi-value call
// result) with a float element.
func typeHasFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isFloat(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isFloat(t)
}

func checkFloatEq(pkg *Package, expr *ast.BinaryExpr) *Finding {
	if expr.Op != token.EQL && expr.Op != token.NEQ {
		return nil
	}
	xt, yt := pkg.Info.Types[expr.X], pkg.Info.Types[expr.Y]
	if xt.Type == nil || yt.Type == nil || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
		return nil
	}
	// A comparison between two compile-time constants is exact by
	// definition and cannot be perturbed at run time.
	if xt.Value != nil && yt.Value != nil {
		return nil
	}
	f := finding(pkg, "floatguard", expr.OpPos,
		"floating-point %s comparison: NaN-hostile and rounding-fragile; use an epsilon or justify with //lint:ignore", expr.Op)
	return &f
}

// costFuncName reports whether name denotes a cost-producing function under
// rule 2. Unexported spellings count too: the quadtree's shared prediction
// helpers (predictBeta and friends, one implementation for Tree and
// Snapshot) are the hot path itself, and exported wrappers delegating to
// them are clean exactly because the delegate is under the rule.
func costFuncName(name string) bool {
	return strings.HasPrefix(name, "Predict") ||
		strings.HasPrefix(name, "predict") ||
		strings.HasPrefix(name, "Estimate") ||
		strings.HasPrefix(name, "estimate") ||
		strings.HasPrefix(name, "Execute") ||
		strings.HasPrefix(name, "execute")
}

// guardNames are callees accepted as finite-ness guards: the math
// predicates themselves plus this repo's wrappers around them.
var guardNames = map[string]bool{
	"IsNaN":      true, // math.IsNaN
	"IsInf":      true, // math.IsInf
	"ValidCost":  true, // core.ValidCost
	"CheckCosts": true, // udf.CheckCosts
	"finiteAvg":  true, // quadtree's guarded block-average accessor
}

func checkCostGuard(pkg *Package, fd *ast.FuncDecl) *Finding {
	if fd.Body == nil || !costFuncName(fd.Name.Name) {
		return nil
	}
	if fd.Type.Results == nil {
		return nil
	}
	returnsFloat := false
	for _, field := range fd.Type.Results.List {
		if tv := pkg.Info.Types[field.Type]; tv.Type != nil && isFloat(tv.Type) {
			returnsFloat = true
		}
	}
	if !returnsFloat {
		return nil
	}

	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || guarded {
			return !guarded
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if guardNames[fun.Name] {
				guarded = true
			}
		case *ast.SelectorExpr:
			if guardNames[fun.Sel.Name] {
				guarded = true
			}
		}
		return !guarded
	})
	if guarded {
		return nil
	}

	// Pure delegator check: every return hands the float results straight
	// to another cost-producing call — directly (`return m.Predict(p)`),
	// via a variable assigned from one (`v, ok := m.Predict(p); return
	// v, ok`, the shape of the timing wrappers), or returns only constants
	// (the "no data" path, `return 0, false`). The guard then lives in the
	// delegate; instrumentation wrappers stay clean.
	delegated := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg, call); fn == nil || !costFuncName(fn.Name()) {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					delegated[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					delegated[obj] = true
				}
			}
		}
		return true
	})
	namedResults := make(map[types.Object]bool)
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				namedResults[obj] = true
			}
		}
	}
	delegator := true
	hasReturn := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Do not descend into function literals: their returns are not
		// this function's returns.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		hasReturn = true
		if len(ret.Results) == 0 {
			// Bare return: every named float result must have been
			// assigned from a cost-producing call.
			for obj := range namedResults {
				if isFloat(obj.Type()) && !delegated[obj] {
					delegator = false
				}
			}
			return true
		}
		for _, res := range ret.Results {
			res := ast.Unparen(res)
			tv := pkg.Info.Types[res]
			if tv.Value != nil {
				continue // constant: nothing to guard
			}
			if !typeHasFloat(tv.Type) {
				continue // ok/err/etc. results need no finite-ness guard
			}
			if call, ok := res.(*ast.CallExpr); ok {
				if fn := calleeFunc(pkg, call); fn != nil && costFuncName(fn.Name()) {
					continue
				}
			}
			if id, ok := res.(*ast.Ident); ok && delegated[pkg.Info.Uses[id]] {
				continue
			}
			delegator = false
		}
		return true
	})
	if delegator && hasReturn {
		return nil
	}

	f := finding(pkg, "floatguard", fd.Name.Pos(),
		"%s returns a cost without a math.IsNaN/math.IsInf guard on its return path (finite-cost invariant)", fd.Name.Name)
	return &f
}
