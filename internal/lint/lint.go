// Package lint is mlqlint's analysis framework: a standard-library-only
// static-analysis driver (go/ast + go/parser + go/types) with eleven
// project-specific analyzers that enforce the cost-model invariants the
// paper's feedback loop (Fig. 1) assumes implicitly:
//
//   - nopanic: library code reports errors, it never panics (the PR 1 UDF
//     error contract).
//   - floatguard: costs stay finite — no float ==/!= comparisons, and
//     cost-returning functions guard NaN/Inf on the return path (the SSE /
//     SSEG math of §4.2 corrupts silently otherwise).
//   - seededrand: experiments are replayable — no global math/rand state,
//     no wall-clock seeds (§5.1's synthetic generator is fully seeded).
//   - detertime: plan choice is deterministic given a trace — no time.Now
//     in planning or compression-decision code paths.
//   - errcheck-core: the feedback loop's own error returns (Model.Observe,
//     udf.Execute, catalog save/load) are never dropped.
//   - frozensnapshot: published snapshots are immutable — no writes through
//     quadtree.Snapshot or core's epochState (the lock-free read path of
//     the epoch/snapshot publisher depends on it).
//   - boundedretry: retry loops terminate under persistent faults — every
//     loop retrying a fallible operation bounds its attempts or carries a
//     backoff/deadline (the buffercache RetryPolicy contract).
//   - lockorder: the mutex-acquisition graph of the concurrency packages is
//     acyclic — no two code paths take the same pair of locks in opposite
//     orders (the canonical order is CanonicalLockOrder).
//   - goroutinelife: every goroutine spawned by library code has a
//     reachable shutdown path — a quit-channel select, a closing channel it
//     ranges over, or a bounded loop; no fire-and-forget drainers.
//   - atomicdiscipline: state shared through sync/atomic is never also
//     accessed plainly, and values loaded from atomic pointers are only
//     swapped, never mutated in place.
//   - chanowner: each channel has exactly one closing owner, and sends in
//     library code sit under a select with a shutdown alternative (or are a
//     documented bounded queue).
//
// Findings can be suppressed at the site with a justified comment:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line, the line directly above it, or the line
// directly above a multi-line statement (the directive covers the whole
// statement span). The reason is mandatory: an unexplained suppression does
// not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Package is one type-checked package handed to analyzers.
type Package struct {
	Path  string // import path, e.g. "mlq/internal/geom"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one lint rule.
type Analyzer interface {
	// Name is the identifier used by enable flags and //lint:ignore.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Run reports the rule's violations in pkg.
	Run(pkg *Package) []Finding
}

// ModuleAnalyzer is a rule whose invariant spans package boundaries (e.g.
// the lock-acquisition graph). The driver calls RunModule once with every
// loaded package instead of calling Run per package; Run should return nil.
type ModuleAnalyzer interface {
	Analyzer
	// RunModule reports violations across the whole package set.
	RunModule(pkgs []*Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		NoPanic{},
		FloatGuard{},
		SeededRand{},
		DeterTime{},
		ErrcheckCore{},
		FrozenSnapshot{},
		BoundedRetry{},
		LockOrder{},
		GoroutineLife{},
		AtomicDiscipline{},
		ChanOwner{},
	}
}

// Run applies the analyzers to every package, drops suppressed findings,
// and returns the remainder sorted by position. Module analyzers see the
// whole package set at once; everything else runs package by package.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	sup := make(suppressions)
	for _, pkg := range pkgs {
		collectSuppressions(pkg, sup)
	}
	var out []Finding
	for _, a := range analyzers {
		var found []Finding
		if ma, ok := a.(ModuleAnalyzer); ok {
			found = ma.RunModule(pkgs)
		} else {
			for _, pkg := range pkgs {
				found = append(found, a.Run(pkg)...)
			}
		}
		for _, f := range found {
			if !sup.matches(a.Name(), f.Pos) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// ignoreRe matches "//lint:ignore <analyzer>[,<analyzer>...] <reason>".
// The reason group is mandatory.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+([A-Za-z0-9_,-]+)\s+(\S.*)$`)

// suppressions maps file -> line -> set of ignored analyzer names. At
// collection time a directive is expanded to every line it covers: its own
// line, the line below, and — when either of those starts a multi-line
// simple statement (a chained call, a wrapped composite literal) — the whole
// statement span, so a directive above the statement suppresses findings
// anywhere inside it.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(analyzer string, pos token.Position) bool {
	if set, ok := s[pos.Filename][pos.Line]; ok && (set[analyzer] || set["all"]) {
		return true
	}
	return false
}

// stmtSpans maps each line that starts a simple (non-block) statement or
// spec to the last line of that statement. Only leaf statements participate:
// extending a directive over an if/for block would let one ignore swallow
// findings in unrelated code beneath it.
func stmtSpans(pkg *Package, file *ast.File) map[int]int {
	spans := make(map[int]int)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.GoStmt,
			*ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt,
			*ast.ValueSpec:
			start := pkg.Fset.Position(n.Pos()).Line
			end := pkg.Fset.Position(n.End()).Line
			if end > spans[start] {
				spans[start] = end
			}
		}
		return true
	})
	return spans
}

func collectSuppressions(pkg *Package, s suppressions) {
	for _, file := range pkg.Files {
		var spans map[int]int // built lazily: most files carry no directives
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if spans == nil {
					spans = stmtSpans(pkg, file)
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s[pos.Filename] = lines
				}
				end := pos.Line + 1
				if e := spans[pos.Line]; e > end {
					end = e // trailing directive on the statement's first line
				}
				if e := spans[pos.Line+1]; e > end {
					end = e // directive on its own line above the statement
				}
				for ln := pos.Line; ln <= end; ln++ {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					for _, name := range strings.Split(m[1], ",") {
						set[name] = true
					}
				}
			}
		}
	}
}

// SuppressionSite is one //lint:ignore directive, for the -suppressions
// audit: where it sits, which analyzers it silences, and the stated reason.
type SuppressionSite struct {
	Pos       token.Position `json:"pos"`
	Analyzers []string       `json:"analyzers"`
	Reason    string         `json:"reason"`
}

// MinReasonWords is the audit floor for a suppression justification: fewer
// than three words ("unreachable", "cannot happen") names no invariant and
// explains nothing to the next reader, so mlqlint -suppressions flags it.
const MinReasonWords = 3

// ReasonTooShort reports whether the site's justification falls under
// MinReasonWords.
func (s SuppressionSite) ReasonTooShort() bool {
	return len(strings.Fields(s.Reason)) < MinReasonWords
}

// SuppressionSites inventories every //lint:ignore directive in the loaded
// packages, sorted by position. It is the data behind mlqlint -suppressions:
// an auditable ledger of every invariant the repo has locally opted out of.
func SuppressionSites(pkgs []*Package) []SuppressionSite {
	var out []SuppressionSite
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					names := strings.Split(m[1], ",")
					sort.Strings(names)
					out = append(out, SuppressionSite{
						Pos:       pkg.Fset.Position(c.Pos()),
						Analyzers: names,
						Reason:    strings.TrimSpace(m[2]),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// finding builds a Finding at a node's position.
func finding(pkg *Package, name string, pos token.Pos, format string, args ...any) Finding {
	return Finding{
		Analyzer: name,
		Pos:      pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
}

// isInternal reports whether the package lives under <module>/internal/,
// the scope most analyzers confine themselves to: library code enforces the
// contracts, while examples and main packages are allowed more latitude
// (their violations are caught by the rules that do apply repo-wide).
func isInternal(pkg *Package) bool {
	return strings.Contains(pkg.Path, "/internal/")
}

// enclosingFuncName returns the name of the innermost function declaration
// containing pos ("" when pos is not inside any FuncDecl, e.g. a var
// initializer). Methods report their bare name, matching how allowlists
// name them.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			if fd.Pos() <= pos && pos <= fd.End() {
				name = fd.Name.Name
			}
		}
		return true
	})
	return name
}

// calleeFunc resolves a call expression to the *types.Func it invokes, nil
// for builtins, conversions, and calls of function-typed values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether the object is the package-level function
// pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
