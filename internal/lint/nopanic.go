package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic(...) in internal/* library code.
//
// Invariant (PR 1's UDF error contract): a failing UDF execution, page read
// or catalog operation is an error value, never a process crash. The
// feedback loop quarantines bad observations and keeps serving queries; a
// panic in library code defeats every layer of that hardening at once.
//
// Two sites are intentionally exempt and carried on an explicit allowlist
// rather than inline ignores, so the exemptions are reviewed here in one
// place:
//
//   - the fault injector's MaybePanic, whose entire purpose is to produce
//     the panic that the engine's isolation layer is tested against, and
//   - the geomtest test-support package, whose MustRect exists so that
//     _test.go files (which the driver never loads) can build rectangles
//     from literals without error plumbing.
type NoPanic struct{}

func (NoPanic) Name() string { return "nopanic" }
func (NoPanic) Doc() string {
	return "forbid panic() in internal library code: failures are error values (UDF error contract)"
}

// noPanicAllowlist maps "pkgpath" or "pkgpath.FuncName" to the reason the
// panic there is intentional.
var noPanicAllowlist = map[string]string{
	"mlq/internal/faults.MaybePanic": "the injected UDF panic the isolation layer is tested against",
	"mlq/internal/geom/geomtest":     "test-support helpers; only imported by _test.go files",
}

func (NoPanic) Run(pkg *Package) []Finding {
	if !isInternal(pkg) {
		return nil
	}
	if _, ok := noPanicAllowlist[pkg.Path]; ok {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// Confirm this is the builtin, not a local function or
			// method that happens to be called "panic".
			if obj := pkg.Info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true
				}
			}
			if fn := enclosingFuncName(file, call.Pos()); fn != "" {
				if _, ok := noPanicAllowlist[pkg.Path+"."+fn]; ok {
					return true
				}
			}
			out = append(out, finding(pkg, "nopanic", call.Pos(),
				"panic in internal library code; return an error instead (UDF error contract)"))
			return true
		})
	}
	return out
}
