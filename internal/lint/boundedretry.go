package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedRetry enforces the resilience layer's termination contract: a loop
// that retries a fallible operation must make progress toward giving up. An
// unbounded hot retry turns any persistent fault — a dead page, a wedged
// store — into a livelock, and the feedback loop then starves instead of
// quarantining the fault and moving on (the buffercache RetryPolicy exists
// precisely so retries are budgeted in attempts and modeled latency).
//
// A loop is retry-shaped when its condition or body compares an error
// against nil AND the error path can reach the next iteration — the
// `if err != nil { continue }` / `if err == nil { break }` family. Loops
// whose error branch exits (`if err != nil { return err }`, the shape of
// every stream-consumer and parser loop) are not retries: the fault is
// propagated, not swallowed. Range loops are exempt: they are bounded by
// the collection. A retry-shaped loop passes if it carries either
//
//   - an attempt bound: an ordered comparison between integer counts
//     (`attempt >= attempts`, `i < max`), or
//   - a backoff/deadline: an ordered comparison involving a time.Duration
//     or time.Time (`lat > deadline`), a time.Sleep/After/NewTimer/Tick
//     call, a context Done/Deadline/Err consultation, or a select
//     statement (channel-driven pacing or cancellation).
//
// Function literals inside the loop are skipped in every search: a
// closure's error handling and bounds belong to the closure, not to the
// loop that spawns it. Genuinely intentional unbounded retries — none exist
// in this repo today — must justify themselves at the site with
// //lint:ignore boundedretry <reason>.
type BoundedRetry struct{}

func (BoundedRetry) Name() string { return "boundedretry" }
func (BoundedRetry) Doc() string {
	return "retry loops must bound attempts or carry a backoff/deadline (termination under persistent faults)"
}

func (BoundedRetry) Run(pkg *Package) []Finding {
	if !isInternal(pkg) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if !retryShaped(pkg, loop) {
				return true
			}
			if hasAttemptBound(pkg, loop) || hasBackoffOrDeadline(pkg, loop) {
				return true
			}
			out = append(out, finding(pkg, "boundedretry", loop.For,
				"retry loop without an attempt bound or backoff/deadline; a persistent fault spins it forever"))
			return true
		})
	}
	return out
}

// loopInspect walks the loop's condition and body with f, skipping function
// literals.
func loopInspect(loop *ast.ForStmt, f func(ast.Node) bool) {
	walk := func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, walk)
	}
	ast.Inspect(loop.Body, walk)
}

// retryShaped reports whether the loop compares an error against nil with
// an error path that reaches the next iteration. An err-nil comparison in
// the loop condition itself (`for err != nil`) is always retry evidence.
// For an if statement testing an error, the error branch — the body under
// `!= nil`, the else (or fall-through) under `== nil` — counts only when it
// does not exit the loop; error branches ending in return/break/goto
// propagate the fault instead of retrying. Comparisons in any other
// position (a bool assignment, a switch case) are counted conservatively.
func retryShaped(pkg *Package, loop *ast.ForStmt) bool {
	if loop.Cond != nil && len(errNilCompares(pkg, loop.Cond)) > 0 {
		return true
	}
	shaped := false
	consumed := make(map[*ast.BinaryExpr]bool)
	loopInspect(loop, func(n ast.Node) bool {
		if shaped {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			for _, be := range errNilCompares(pkg, n.Cond) {
				consumed[be] = true
				if errPathIterates(n, be.Op) {
					shaped = true
				}
			}
		case *ast.BinaryExpr:
			if !consumed[n] && isErrNilCompare(pkg, n) {
				shaped = true
			}
		}
		return !shaped
	})
	return shaped
}

// errPathIterates reports whether the error branch of an if testing an
// error can fall out into the rest of the loop body (and so reach the next
// iteration).
func errPathIterates(ifs *ast.IfStmt, op token.Token) bool {
	if op == token.NEQ {
		// `if err != nil { ... }`: the body is the error branch.
		return !exitsLoop(ifs.Body)
	}
	// `if err == nil { ... } [else { ... }]`: the else — or, absent one,
	// the fall-through — is the error branch.
	if ifs.Else == nil {
		return true
	}
	if blk, ok := ifs.Else.(*ast.BlockStmt); ok {
		return !exitsLoop(blk)
	}
	return true // else-if chain: assume it can fall through
}

// exitsLoop reports whether a block's final statement leaves the loop.
// `continue` and fall-through iterate; empty blocks fall through.
func exitsLoop(blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.GOTO
	}
	return false
}

// errNilCompares collects the error-vs-nil comparisons inside expr.
func errNilCompares(pkg *Package, expr ast.Expr) []*ast.BinaryExpr {
	var out []*ast.BinaryExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && isErrNilCompare(pkg, be) {
			out = append(out, be)
		}
		return true
	})
	return out
}

func isErrNilCompare(pkg *Package, be *ast.BinaryExpr) bool {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return false
	}
	xt, yt := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
	return (isErrorType(xt.Type) && yt.IsNil()) || (isErrorType(yt.Type) && xt.IsNil())
}

// hasAttemptBound reports an ordered comparison between plain integer
// counts — the `attempt >= attempts` / `i < max` shape. Duration operands
// do not count here; they are deadline evidence, not attempt evidence.
func hasAttemptBound(pkg *Package, loop *ast.ForStmt) bool {
	found := false
	loopInspect(loop, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !orderedOp(be.Op) {
			return true
		}
		if isCountType(typeOf(pkg, be.X)) && isCountType(typeOf(pkg, be.Y)) {
			found = true
		}
		return !found
	})
	return found
}

// hasBackoffOrDeadline reports time-budget evidence: a comparison against a
// Duration or Time, a timer-package call, a context consultation, an I/O
// deadline re-armed inside the body (a read loop whose every iteration
// blocks under a net.Conn deadline cannot hot-spin — a persistent fault
// surfaces as a timeout error, not a spin), or a select statement.
func hasBackoffOrDeadline(pkg *Package, loop *ast.ForStmt) bool {
	found := false
	loopInspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.BinaryExpr:
			if orderedOp(n.Op) && (isTimePkgType(typeOf(pkg, n.X)) || isTimePkgType(typeOf(pkg, n.Y))) {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pkg, n); fn != nil {
				switch {
				case isPkgFunc(fn, "time", "Sleep"),
					isPkgFunc(fn, "time", "After"),
					isPkgFunc(fn, "time", "NewTimer"),
					isPkgFunc(fn, "time", "Tick"):
					found = true
				case fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Done" || fn.Name() == "Deadline" || fn.Name() == "Err"):
					found = true
				case fn.Name() == "SetDeadline" || fn.Name() == "SetReadDeadline" ||
					fn.Name() == "SetWriteDeadline":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func orderedOp(op token.Token) bool {
	return op == token.LSS || op == token.LEQ || op == token.GTR || op == token.GEQ
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isCountType reports a plain integer — excluding time-package named types,
// whose underlying int64 would otherwise let a deadline comparison
// masquerade as an attempt bound.
func isCountType(t types.Type) bool {
	if t == nil || isTimePkgType(t) {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isTimePkgType reports a named type declared in package time (Duration,
// Time, ...).
func isTimePkgType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time"
}
