package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CanonicalLockOrder is the repo's documented mutex-acquisition order: a
// code path holding lock i may acquire lock j only when i precedes j here.
// It was derived from the PR 6 replica fleet — the group lock wraps lineage
// reads, lineage wraps per-node state, node state wraps the publisher's
// journal critical section, and everything may take the leaf mutexes
// (telemetry counters, transport bookkeeping, error latches) last. The
// budget arbiter's mutex sits outermost: a Cycle holds it across every
// holder resize, which may enter the publisher's writer machinery and from
// there any of the locks below. The socket transport's locks nest inside
// the publisher's accept critical section (the stream fan-out sends under
// jmu): its table lock wraps the per-endpoint bootstrap state (snapshot
// install) and per-endpoint inbox state (re-register), with the per-link
// connection state and the jitter stream as leaves. lockorder
// does not enforce this list directly — it proves the observed acquisition
// graph is acyclic, which every order-respecting program satisfies — but
// cycle reports cite it so the fix direction is unambiguous.
var CanonicalLockOrder = []string{
	"budget.Arbiter.mu",
	"replica.Group.mu",
	"replica.Group.linMu",
	"replica.node.mu",
	"core.Publisher.jmu",
	"core.Publisher.errMu",
	"replica.Group.ckptMu",
	"replica.Group.applyErrMu",
	"replica.MemTransport.mu",
	"nettransport.NetTransport.mu",
	"nettransport.bootState.mu",
	"nettransport.endpoint.mu",
	"nettransport.connMgr.mu",
	"nettransport.NetTransport.rngMu",
	"replica.GroupTelemetry.mu",
}

// lockOrderScope is the package-path suffixes whose mutex graph lockorder
// builds: the five concurrency-heavy packages the epoch/snapshot publisher
// and the replica fleet live in. Fixture packages load under the same
// suffixes so golden tests exercise the real scoping.
var lockOrderScope = []string{
	"internal/budget",
	"internal/core",
	"internal/replica",
	"internal/replica/nettransport",
	"internal/journal",
	"internal/telemetry",
	"internal/buffercache",
}

// LockOrder proves the mutex-acquisition graph of the concurrency packages
// is acyclic. It identifies locks by owning struct field (pkg.Type.field),
// simulates each function's held set statement by statement (branch-aware;
// deferred unlocks hold to function end; goroutines inherit nothing), then
// propagates may-acquire sets over the static call graph so an edge A->B is
// recorded whenever a path holding A can reach an acquisition of B — in the
// same function or transitively through callees. Any strongly connected
// component in the resulting graph is a potential deadlock.
//
// Known blind spots, by construction: locks reached through interface
// methods or function values are not tracked (the call target is unknown
// statically), and local mutex variables are ignored (no cross-function
// ordering exists for them).
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "mutex-acquisition graph of the concurrency packages must be acyclic (no lock-order inversions)"
}

// Run implements Analyzer; lockorder only runs module-wide.
func (LockOrder) Run(*Package) []Finding { return nil }

// RunModule implements ModuleAnalyzer.
func (LockOrder) RunModule(pkgs []*Package) []Finding {
	g := &lockGraph{
		summaries: make(map[*types.Func]*lockSummary),
		edges:     make(map[lockEdge]token.Position),
	}
	for _, pkg := range pkgs {
		if lockOrderInScope(pkg) {
			g.scanPackage(pkg)
		}
	}
	g.propagate()
	return g.cycleFindings()
}

func lockOrderInScope(pkg *Package) bool {
	for _, suf := range lockOrderScope {
		if strings.HasSuffix(pkg.Path, suf) {
			return true
		}
	}
	return false
}

// lockEdge is one observed ordering: from was held when to was acquired.
type lockEdge struct{ from, to string }

// lockCall is a call made while holding locks; during propagation it
// expands into edges held x mayAcquire(callee).
type lockCall struct {
	callee *types.Func
	held   []string
	pos    token.Position
}

// lockSummary is one function body's contribution to the graph.
type lockSummary struct {
	acquires map[string]bool
	calls    []lockCall
}

type lockGraph struct {
	summaries map[*types.Func]*lockSummary
	anon      []*lockSummary // function literals: analyzed, never called into
	edges     map[lockEdge]token.Position
	mayAcq    map[*types.Func]map[string]bool
}

func (g *lockGraph) addEdge(from, to string, pos token.Position) {
	e := lockEdge{from, to}
	if old, ok := g.edges[e]; !ok || posLess(pos, old) {
		g.edges[e] = pos
	}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func (g *lockGraph) scanPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sum := &lockSummary{acquires: make(map[string]bool)}
			w := &lockWalker{pkg: pkg, g: g, sum: sum}
			w.block(fd.Body.List, make(map[string]bool))
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				g.summaries[fn] = sum
			} else {
				g.anon = append(g.anon, sum)
			}
		}
	}
}

// lockWalker simulates one function body, tracking the set of held locks.
type lockWalker struct {
	pkg *Package
	g   *lockGraph
	sum *lockSummary
}

// block simulates a statement list against held, reporting whether control
// cannot fall out of the bottom (every path returned or branched away).
func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) bool {
	for _, s := range stmts {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current path; fallthrough continues.
		return s.Tok != token.FALLTHROUGH
	case *ast.GoStmt:
		// Arguments are evaluated by the spawner; the goroutine itself
		// starts with an empty held set, so the call contributes no edges
		// from the spawner's locks.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.funcLit(fl)
		}
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.funcLit(fl)
			break
		}
		if id, kind, isMutex := w.mutexOp(s.Call); isMutex {
			// defer mu.Unlock(): the lock stays held to function end, which
			// is exactly how the simulation already models an un-released
			// lock. A (pathological) defer mu.Lock() is recorded as-is.
			if kind == lockAcquire && id != "" {
				w.acquire(id, held, s.Call.Pos())
			}
			break
		}
		// Other deferred calls run at return; the current held set is the
		// closest static approximation of what is held then.
		w.call(s.Call, held)
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := w.block(s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			setHeld(held, elseHeld)
		case elseTerm:
			setHeld(held, thenHeld)
		default:
			// Conservative union: a lock held on either surviving branch is
			// treated as held after the if.
			setHeld(held, unionHeld(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := copyHeld(held)
		if !w.block(s.Body.List, body) && s.Post != nil {
			w.stmt(s.Post, body)
		}
		// Loop bodies are assumed lock-balanced; acquisitions inside were
		// recorded while simulating the copy.
	case *ast.RangeStmt:
		w.expr(s.X, held)
		body := copyHeld(held)
		w.block(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, held)
			}
			body := copyHeld(held)
			w.block(cc.Body, body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			body := copyHeld(held)
			w.block(cc.Body, body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := copyHeld(held)
			if cc.Comm != nil {
				w.stmt(cc.Comm, body)
			}
			w.block(cc.Body, body)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return false
}

// expr records every mutex operation and tracked call inside e, in source
// order. Function literals are analyzed separately with an empty held set:
// a closure runs wherever its holder invokes it, not under the locks held
// at its definition site.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.funcLit(n)
			return false
		case *ast.CallExpr:
			if id, kind, isMutex := w.mutexOp(n); isMutex {
				if id != "" {
					if kind == lockAcquire {
						w.acquire(id, held, n.Pos())
					} else {
						delete(held, id)
					}
				}
				return false
			}
			w.call(n, held)
		}
		return true
	})
}

func (w *lockWalker) funcLit(fl *ast.FuncLit) {
	sum := &lockSummary{acquires: make(map[string]bool)}
	inner := &lockWalker{pkg: w.pkg, g: w.g, sum: sum}
	inner.block(fl.Body.List, make(map[string]bool))
	w.g.anon = append(w.g.anon, sum)
}

func (w *lockWalker) acquire(id string, held map[string]bool, pos token.Pos) {
	p := w.pkg.Fset.Position(pos)
	if held[id] {
		// Re-acquiring a held lock is a self-deadlock (sync.Mutex is not
		// reentrant; a recursive RLock can deadlock against a queued writer).
		w.g.addEdge(id, id, p)
	}
	for h := range held {
		if h != id {
			w.g.addEdge(h, id, p)
		}
	}
	held[id] = true
	w.sum.acquires[id] = true
}

func (w *lockWalker) call(call *ast.CallExpr, held map[string]bool) {
	if len(held) == 0 {
		return // the callee's own orderings live in its summary
	}
	fn := calleeFunc(w.pkg, call)
	if fn == nil {
		return // builtin, conversion, interface method, or function value
	}
	hc := make([]string, 0, len(held))
	for h := range held {
		hc = append(hc, h)
	}
	sort.Strings(hc)
	w.sum.calls = append(w.sum.calls, lockCall{
		callee: fn,
		held:   hc,
		pos:    w.pkg.Fset.Position(call.Pos()),
	})
}

type lockOpKind int

const (
	lockAcquire lockOpKind = iota
	lockRelease
)

// mutexOp classifies a call as a sync.Mutex/RWMutex (R)Lock/(R)Unlock on a
// struct-field lock. isMutex is true for any sync lock call; id is empty
// when the receiver is not a tracked field (a local mutex, say).
func (w *lockWalker) mutexOp(call *ast.CallExpr) (id string, kind lockOpKind, isMutex bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", 0, false
	}
	return w.lockID(ast.Unparen(sel.X)), kind, true
}

// lockID names a mutex field as ownerPkg.OwnerType.field, the identity the
// graph is keyed by. Non-field receivers return "".
func (w *lockWalker) lockID(e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, _ := w.pkg.Info.Uses[sel.Sel].(*types.Var)
	if obj == nil || !obj.IsField() {
		return ""
	}
	t := typeOf(w.pkg, sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	tn := named.Obj()
	return tn.Pkg().Name() + "." + tn.Name() + "." + obj.Name()
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func setHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

func unionHeld(a, b map[string]bool) map[string]bool {
	out := copyHeld(a)
	for k := range b {
		out[k] = true
	}
	return out
}

// propagate computes each function's may-acquire set to a fixpoint over the
// call graph, then expands every held-locks call site into edges.
func (g *lockGraph) propagate() {
	g.mayAcq = make(map[*types.Func]map[string]bool, len(g.summaries))
	for fn, s := range g.summaries {
		g.mayAcq[fn] = copyHeld(s.acquires)
	}
	for changed := true; changed; {
		changed = false
		for fn, s := range g.summaries {
			m := g.mayAcq[fn]
			for _, c := range s.calls {
				for a := range g.mayAcq[c.callee] {
					if !m[a] {
						m[a] = true
						changed = true
					}
				}
			}
		}
	}
	expand := func(s *lockSummary) {
		for _, c := range s.calls {
			for to := range g.mayAcq[c.callee] {
				for _, from := range c.held {
					g.addEdge(from, to, c.pos)
				}
			}
		}
	}
	for _, s := range g.summaries {
		expand(s)
	}
	for _, s := range g.anon {
		expand(s)
	}
}

// cycleFindings reports one finding per strongly connected component of the
// edge graph (plus self-loops), anchored at the earliest edge of a
// deterministic representative cycle.
func (g *lockGraph) cycleFindings() []Finding {
	adj := make(map[string][]string)
	nodeSet := make(map[string]bool)
	for e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodeSet[e.from] = true
		nodeSet[e.to] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	var out []Finding
	for _, scc := range stronglyConnected(nodes, adj) {
		if len(scc) == 1 {
			if _, self := g.edges[lockEdge{scc[0], scc[0]}]; !self {
				continue
			}
		}
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		sort.Strings(scc)
		cycle := shortestCycle(scc[0], in, adj)
		if cycle == nil {
			continue
		}
		next := cycle[0]
		if len(cycle) > 1 {
			next = cycle[1]
		}
		pos := g.edges[lockEdge{cycle[0], next}]
		path := strings.Join(append(append([]string(nil), cycle...), cycle[0]), " -> ")
		out = append(out, Finding{
			Analyzer: "lockorder",
			Pos:      pos,
			Message: "lock acquisition cycle " + path +
				" can deadlock; acquire in one global order (canonical: " +
				strings.Join(CanonicalLockOrder, " < ") + ")",
		})
	}
	return out
}

// shortestCycle returns the shortest cycle through start confined to the
// node set, as [start, n1, n2, ...]; BFS over sorted adjacency makes the
// result deterministic. A self-loop yields [start].
func shortestCycle(start string, in map[string]bool, adj map[string][]string) []string {
	for _, n := range adj[start] {
		if n == start {
			return []string{start}
		}
	}
	prev := map[string]string{}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range adj[cur] {
			if n == start {
				// Walk back to start to materialize the path.
				path := []string{cur}
				for p := cur; p != start; {
					p = prev[p]
					path = append(path, p)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			if !in[n] {
				continue
			}
			if _, seen := prev[n]; !seen {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return nil
}

// stronglyConnected is Tarjan's algorithm over the (sorted) node list.
func stronglyConnected(nodes []string, adj map[string][]string) [][]string {
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
