// Package mlq is a from-scratch Go reproduction of "Self-tuning UDF Cost
// Modeling Using the Memory-Limited Quadtree" (He, Lee, Snapp — EDBT 2004).
//
// The library implements the paper's contribution — the memory-limited
// quadtree (MLQ), a self-tuning UDF execution-cost model that learns from
// query feedback under a strict memory budget — together with every
// substrate its evaluation depends on: the static-histogram baselines, the
// synthetic workload generators, a simulated ORDBMS (page store, LRU buffer
// cache, text-search and spatial-search engines exposing the paper's six
// "real" UDFs), a predicate-ordering query optimizer, and an experiment
// harness that regenerates every figure of the evaluation section.
//
// Layout:
//
//	internal/quadtree    the MLQ data structure (§4)
//	internal/core        cost-model API: Model, Estimator, instrumentation
//	internal/histogram   SH-W and SH-H baselines
//	internal/synthetic   peak/decay synthetic cost surfaces (§5.1)
//	internal/dist        query-point distributions (§5.1)
//	internal/workload    query streams and SH training-set collection
//	internal/metrics     NAE, learning curves, APC/AUC support
//	internal/pagestore   simulated disk pages
//	internal/buffercache LRU buffer cache (the IO-noise source)
//	internal/textdb      keyword-search engine: SIMPLE, THRESH, PROX
//	internal/spatialdb   spatial engine: KNN, WIN, RANGE
//	internal/engine      mini ORDBMS executor with the Fig. 1 feedback loop
//	internal/optimizer   rank ordering of expensive predicates
//	internal/harness     Experiments 1-4 and parameter ablations
//	cmd/mlqbench         regenerate every figure
//	cmd/mlqtool          train/predict/inspect models from CSV
//	cmd/udfsim           end-to-end self-tuning optimizer demo
//	examples/...         runnable API tours
//
// See README.md for a guided tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package mlq
