// Benchmarks regenerating a representative cell of every figure in the
// paper's evaluation (run cmd/mlqbench for the full tables), plus
// micro-benchmarks of the operations whose costs the paper reports (APC,
// AUC: prediction, insertion, compression).
package mlq_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/engine"
	"mlq/internal/events"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/harness"
	"mlq/internal/histogram"
	"mlq/internal/leo"
	"mlq/internal/nncurve"
	"mlq/internal/quadtree"
	"mlq/internal/spatialdb"
	"mlq/internal/synthetic"
	"mlq/internal/telemetry"
	"mlq/internal/textdb"
	"mlq/internal/udf"
)

// benchOpts keeps each figure-cell iteration around a few milliseconds.
func benchOpts() harness.Options {
	return harness.Options{Queries: 1000, TrainQueries: 1000, Seed: 1}
}

var (
	benchSurfaceOnce sync.Once
	benchSurface     *synthetic.Surface

	benchUDFsOnce sync.Once
	benchTextUDF  udf.UDF
	benchWinUDF   udf.UDF
)

func surface(b *testing.B) *synthetic.Surface {
	benchSurfaceOnce.Do(func() {
		s, err := synthetic.Generate(synthetic.Config{Seed: 1, NumPeaks: 50})
		if err != nil {
			b.Fatal(err)
		}
		benchSurface = s
	})
	return benchSurface
}

func realUDFs(b *testing.B) (udf.UDF, udf.UDF) {
	benchUDFsOnce.Do(func() {
		tdb, err := textdb.Generate(textdb.Config{
			NumDocs: 800, VocabSize: 500, MeanDocLen: 60,
			PageSize: 1024, CachePages: 32, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		sdb, err := spatialdb.Generate(spatialdb.Config{
			Extent: 500, NumObjects: 5000, GridSize: 16,
			PageSize: 1024, CachePages: 32, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchTextUDF = tdb.UDFs()[0]
		benchWinUDF = sdb.UDFs()[1]
	})
	return benchTextUDF, benchWinUDF
}

// BenchmarkFig8Cell measures one cell of Figure 8 (synthetic accuracy) per
// method: a full predict-observe pass over the workload.
func BenchmarkFig8Cell(b *testing.B) {
	s := surface(b)
	for _, m := range harness.Methods() {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunSyntheticNAE(m, s, dist.KindUniform, benchOpts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Cell measures one real-UDF CPU-accuracy cell of Figure 9,
// executing the UDF for every query.
func BenchmarkFig9Cell(b *testing.B) {
	text, win := realUDFs(b)
	opts := benchOpts()
	opts.Queries, opts.TrainQueries = 300, 300
	for _, u := range []udf.UDF{text, win} {
		b.Run(u.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunRealNAE(harness.MLQE, u, dist.KindUniform, harness.CPUCost, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10Breakdown measures the Figure 10(b) modeling-cost run.
func BenchmarkFig10Breakdown(b *testing.B) {
	surface(b)
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig10Synthetic(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11aCell measures one disk-IO accuracy cell of Figure 11(a).
func BenchmarkFig11aCell(b *testing.B) {
	_, win := realUDFs(b)
	opts := benchOpts()
	opts.Queries, opts.TrainQueries = 300, 300
	opts.Beta = 10
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunRealNAE(harness.MLQE, win, dist.KindUniform, harness.IOCost, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11bCell measures one noise-probability cell of Figure 11(b).
func BenchmarkFig11bCell(b *testing.B) {
	s := surface(b)
	noisy, err := synthetic.NewNoisy(s, 0.3, 9)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	opts.Beta = 10
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunSyntheticNAE(harness.MLQE, noisy, dist.KindUniform, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Curves measures the Figure 12 learning-curve run.
func BenchmarkFig12Curves(b *testing.B) {
	surface(b)
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig12Synthetic(10, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblateGamma measures one ablation sweep point (γ).
func BenchmarkAblateGamma(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Ablate("gamma", []float64{0.01}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks: the operations behind APC and AUC (Fig. 10). ---

func newBenchTree(b *testing.B, strat quadtree.Strategy, memNodes int) *quadtree.Tree {
	t, err := quadtree.New(quadtree.Config{
		Region:      geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1000, 1000, 1000, 1000}),
		Strategy:    strat,
		MemoryLimit: memNodes * quadtree.DefaultNodeBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func randPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
	}
	return pts
}

// BenchmarkInsert measures a single model update (IC + amortized CC) under
// the paper's 1.8 KB budget, for both strategies.
func BenchmarkInsert(b *testing.B) {
	for _, strat := range []quadtree.Strategy{quadtree.Eager, quadtree.Lazy} {
		b.Run(strat.String(), func(b *testing.B) {
			t := newBenchTree(b, strat, 92)
			pts := randPoints(4096, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := t.Insert(pts[i%len(pts)], float64(i%10000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredict measures a single prediction (the paper's APC) on a tree
// at its memory limit.
func BenchmarkPredict(b *testing.B) {
	t := newBenchTree(b, quadtree.Eager, 92)
	pts := randPoints(4096, 8)
	for i := 0; i < 20000; i++ {
		t.Insert(pts[i%len(pts)], float64(i%10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.PredictBeta(pts[i%len(pts)], 1)
	}
}

// BenchmarkPredictResize pins the memory wall's hot-path contract: a tree
// whose budget has been moved around by live Resize calls predicts at the
// same speed as one that never resized, because Predict never reads the
// live limit — Resize only adjusts the limit and evicts or regrows nodes
// at the point of the call. Must stay within noise of BenchmarkPredict.
func BenchmarkPredictResize(b *testing.B) {
	t := newBenchTree(b, quadtree.Eager, 92)
	pts := randPoints(4096, 8)
	for i := 0; i < 20000; i++ {
		t.Insert(pts[i%len(pts)], float64(i%10000))
	}
	// Walk the budget down, up, and back to where BenchmarkPredict sits, so
	// the measured tree has lived through the arbiter's whole move cycle.
	for _, nodes := range []int{46, 138, 92} {
		if err := t.Resize(nodes * quadtree.DefaultNodeBytes); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 4096; i++ {
		t.Insert(pts[i%len(pts)], float64(i%10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.PredictBeta(pts[i%len(pts)], 1)
	}
}

// BenchmarkPredictParallel measures Predict throughput under the paper's
// live feedback loop (Fig. 1: predict, execute, observe) for the two
// concurrency wrappers core offers: a mutex around the model
// (core.Synchronized) versus lock-free reads of a published snapshot
// (core.Publisher). Each of N predictor goroutines issues predictions and
// feeds back an observation for every tenth one, so both cells perform
// identical model-update work; only the synchronization differs. The mutex
// path serializes every prediction behind inserts and whole compression
// passes, while snapshot readers never wait and observations drain through
// the batching writer. The acceptance bar for the epoch/snapshot design is
// Snapshot-8 at least 4x Mutex-8 (the reader-scaling gap needs GOMAXPROCS
// >= 8 to fully open; single-core hosts only see the lock-overhead gap),
// with Snapshot-1 no slower than the single-threaded BenchmarkPredict path.
func BenchmarkPredictParallel(b *testing.B) {
	newModel := func() *core.MLQ {
		m, err := core.NewMLQ(quadtree.Config{
			Region:      geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1000, 1000, 1000, 1000}),
			MemoryLimit: 92 * quadtree.DefaultNodeBytes,
		})
		if err != nil {
			b.Fatal(err)
		}
		train := randPoints(4096, 8)
		for i := 0; i < 20000; i++ {
			if err := m.Observe(train[i%len(train)], float64(i%10000)); err != nil {
				b.Fatal(err)
			}
		}
		return m
	}
	pts := randPoints(4096, 8)
	run := func(b *testing.B, goroutines int, predict func(geom.Point) (float64, bool), observe func(geom.Point, float64) error) {
		b.ResetTimer()
		per := b.N / goroutines
		if per == 0 {
			per = 1
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					p := pts[(off+i)%len(pts)]
					predict(p)
					if i%10 == 9 {
						observe(p, float64(i%10000))
					}
				}
			}(g * 131)
		}
		wg.Wait()
	}
	for _, goroutines := range []int{1, 8} {
		b.Run(fmt.Sprintf("Mutex-%d", goroutines), func(b *testing.B) {
			s := core.NewSynchronized(newModel())
			run(b, goroutines, s.Predict, s.Observe)
		})
		b.Run(fmt.Sprintf("Snapshot-%d", goroutines), func(b *testing.B) {
			pub, err := core.NewPublisher(newModel(), core.PublisherConfig{})
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			run(b, goroutines, pub.Predict, pub.Observe)
		})
	}
}

// BenchmarkPredictTelemetry pins the observability contract: Predict carries
// no instrumentation at all (the engine counts predictions instead), so an
// instrumented tree predicts at the same speed as a bare one.
func BenchmarkPredictTelemetry(b *testing.B) {
	pts := randPoints(4096, 8)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			t := newBenchTree(b, quadtree.Eager, 92)
			if mode == "on" {
				t.Instrument(telemetry.New(), nil, telemetry.L("model", "bench"))
			}
			for i := 0; i < 20000; i++ {
				t.Insert(pts[i%len(pts)], float64(i%10000))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.PredictBeta(pts[i%len(pts)], 1)
			}
		})
	}
}

// BenchmarkPredictEvents pins the event-spine hot-path contract: Predict
// emits no events and takes no recorder branch, so a publisher with the
// causal spine and flight recorder installed predicts at the same speed as
// one without. Emission happens only on the Observe/apply/publish paths,
// where one pointer check gates it.
func BenchmarkPredictEvents(b *testing.B) {
	pts := randPoints(4096, 8)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			m, err := core.NewMLQ(quadtree.Config{
				Region:      geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1000, 1000, 1000, 1000}),
				MemoryLimit: 92 * quadtree.DefaultNodeBytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 20000; i++ {
				if err := m.Observe(pts[i%len(pts)], float64(i%10000)); err != nil {
					b.Fatal(err)
				}
			}
			cfg := core.PublisherConfig{}
			if mode == "on" {
				cfg.Events = events.New(events.Config{Seed: 1})
			}
			pub, err := core.NewPublisher(m, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pub.Predict(pts[i%len(pts)])
			}
		})
	}
}

// BenchmarkCompress measures one full compression pass over a large tree.
func BenchmarkCompress(b *testing.B) {
	pts := randPoints(8192, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := newBenchTree(b, quadtree.Eager, 1<<20)
		for j := 0; j < 8192; j++ {
			t.Insert(pts[j], float64(j%10000))
		}
		b.StartTimer()
		t.Compress()
	}
}

// BenchmarkHistogram measures SH training and prediction.
func BenchmarkHistogram(b *testing.B) {
	region := geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1000, 1000, 1000, 1000})
	pts := randPoints(5000, 10)
	samples := make([]histogram.Sample, len(pts))
	for i, p := range pts {
		samples[i] = histogram.Sample{Point: p, Value: float64(i % 1000)}
	}
	b.Run("Train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := histogram.Train(histogram.EquiHeight, histogram.Config{Region: region}, samples); err != nil {
				b.Fatal(err)
			}
		}
	})
	h, err := histogram.Train(histogram.EquiHeight, histogram.Config{Region: region}, samples)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Predict(pts[i%len(pts)])
		}
	})
}

// BenchmarkUDFExecution measures the substrate UDFs themselves — the
// denominator of Figure 10's normalization.
func BenchmarkUDFExecution(b *testing.B) {
	text, win := realUDFs(b)
	for _, u := range []udf.UDF{text, win} {
		b.Run(u.Name(), func(b *testing.B) {
			region := u.Region()
			src := dist.NewUniform(region, 11)
			pts := make([]geom.Point, 256)
			for i := range pts {
				pts[i] = src.Next()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := u.Execute(pts[i%len(pts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizerQuery measures the end-to-end engine demo: predicate
// ordering with live cost-model feedback.
func BenchmarkOptimizerQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	table := &engine.Table{Name: "t"}
	for i := 0; i < 500; i++ {
		table.Rows = append(table.Rows, engine.Row{rng.Float64() * 100, rng.Float64() * 100})
	}
	for i := 0; i < b.N; i++ {
		m, err := core.NewMLQ(quadtree.Config{
			Region:      geomtest.MustRect(geom.Point{0}, geom.Point{100}),
			MemoryLimit: 1843,
		})
		if err != nil {
			b.Fatal(err)
		}
		preds := []*engine.Predicate{
			{
				Name:  "expensive",
				Exec:  func(r engine.Row) (bool, float64) { return true, 100 + r[0] },
				Point: func(r engine.Row) geom.Point { return geom.Point{r[0]} },
				Model: m,
			},
			{
				Name: "cheap",
				Exec: func(r engine.Row) (bool, float64) { return r[1] < 20, 1 },
			},
		}
		if _, err := engine.ExecuteQuery(table, preds, engine.OrderByRank); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNTrain measures the neural-network baseline's a-priori training
// cost (the paper's "very slow to train" claim, quantified).
func BenchmarkNNTrain(b *testing.B) {
	region := geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1000, 1000, 1000, 1000})
	pts := randPoints(1000, 21)
	samples := make([]histogram.Sample, len(pts))
	for i, p := range pts {
		samples[i] = histogram.Sample{Point: p, Value: p[0] + p[1]}
	}
	for i := 0; i < b.N; i++ {
		if _, err := nncurve.Train(nncurve.Config{
			Region: region, MemoryLimit: 1843, Epochs: 50, Seed: 1,
		}, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLEOObserve measures the LEO-style model's per-feedback cost
// (log append plus amortized analysis pass).
func BenchmarkLEOObserve(b *testing.B) {
	region := geomtest.MustRect(geom.Point{0, 0, 0, 0}, geom.Point{1000, 1000, 1000, 1000})
	m, err := leo.New(leo.Config{Region: region})
	if err != nil {
		b.Fatal(err)
	}
	pts := randPoints(4096, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Observe(pts[i%len(pts)], float64(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialize measures model persistence (catalog writes at
// optimizer checkpoint time).
func BenchmarkSerialize(b *testing.B) {
	t := newBenchTree(b, quadtree.Eager, 92)
	pts := randPoints(4096, 23)
	for i := 0; i < 20000; i++ {
		t.Insert(pts[i%len(pts)], float64(i%10000))
	}
	b.Run("WriteTo", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if _, err := t.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.Run("Read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := quadtree.Read(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClone measures the snapshot cost for lock-free reader patterns.
func BenchmarkClone(b *testing.B) {
	t := newBenchTree(b, quadtree.Eager, 92)
	pts := randPoints(4096, 24)
	for i := 0; i < 20000; i++ {
		t.Insert(pts[i%len(pts)], float64(i%10000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Clone()
	}
}
