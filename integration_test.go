// Whole-system integration test: the complete Figure-1 loop over the real
// substrates, across a simulated DBMS restart. An optimizer session runs
// UDF-predicate queries against the text and spatial engines with
// self-tuning cost models, persists the models in a catalog, "restarts",
// reloads the catalog, and keeps planning with the retained knowledge.
package mlq_test

import (
	"bytes"
	"math/rand"
	"testing"

	"mlq/internal/catalog"
	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
	"mlq/internal/geom/geomtest"
	"mlq/internal/quadtree"
	"mlq/internal/spatialdb"
	"mlq/internal/textdb"
)

func TestEndToEndSelfTuningAcrossRestart(t *testing.T) {
	tdb, err := textdb.Generate(textdb.Config{
		NumDocs: 600, VocabSize: 400, MeanDocLen: 50,
		PageSize: 512, CachePages: 32, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := spatialdb.Generate(spatialdb.Config{
		Extent: 400, NumObjects: 3000, GridSize: 12,
		PageSize: 512, CachePages: 32, Seed: 102,
	})
	if err != nil {
		t.Fatal(err)
	}

	newModel := func(lo, hi geom.Point) *core.MLQ {
		m, err := core.NewMLQ(quadtree.Config{
			Region:      geomtest.MustRect(lo, hi),
			Strategy:    quadtree.Lazy,
			MemoryLimit: 1843,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	buildPreds := func(winModel, textModel core.Model) []*engine.Predicate {
		return []*engine.Predicate{
			{
				Name: "NearUrbanArea",
				Exec: func(row engine.Row) (bool, float64) {
					objs, stats, err := sdb.Window(row[0]-15, row[1]-15, 30, 30)
					if err != nil {
						t.Fatal(err)
					}
					return len(objs) > 0, stats.CPU + 10*stats.IO
				},
				Point: func(row engine.Row) geom.Point { return geom.Point{row[0], row[1]} },
				Model: winModel,
			},
			{
				Name: "HasKeyword",
				Exec: func(row engine.Row) (bool, float64) {
					w := tdb.VocabSize()/2 + int(row[2])/2
					docs, stats, err := tdb.SearchSimple([]int{w})
					if err != nil {
						t.Fatal(err)
					}
					return len(docs) > 0, stats.CPU + 10*stats.IO
				},
				Point: func(row engine.Row) geom.Point { return geom.Point{row[2]} },
				Model: textModel,
			},
		}
	}

	table := &engine.Table{Name: "requests"}
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 800; i++ {
		table.Rows = append(table.Rows, engine.Row{
			rng.Float64() * 400, rng.Float64() * 400,
			rng.Float64() * float64(tdb.VocabSize()),
		})
	}

	// --- Session 1: run with fresh models, then checkpoint the catalog.
	winModel := newModel(geom.Point{0, 0}, geom.Point{400, 400})
	textModel := newModel(geom.Point{0}, geom.Point{float64(tdb.VocabSize())})
	res1, err := engine.ExecuteQuery(table, buildPreds(winModel, textModel), engine.OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Selected == 0 {
		t.Fatal("query selected nothing; fixture broken")
	}
	if winModel.Tree().Inserts() == 0 || textModel.Tree().Inserts() == 0 {
		t.Fatal("feedback loop did not train the models")
	}

	cat := catalog.New()
	if err := cat.Put("NearUrbanArea", winModel, nil); err != nil {
		t.Fatal(err)
	}
	if err := cat.Put("HasKeyword", textModel, nil); err != nil {
		t.Fatal(err)
	}
	var checkpoint bytes.Buffer
	if _, err := cat.WriteTo(&checkpoint); err != nil {
		t.Fatal(err)
	}

	// --- "Restart": reload models from the catalog blob.
	restored, err := catalog.Read(&checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	winEntry, ok := restored.Get("NearUrbanArea")
	if !ok {
		t.Fatal("NearUrbanArea lost across restart")
	}
	textEntry, _ := restored.Get("HasKeyword")
	winRestored := winEntry.CPU.(*core.MLQ)
	textRestored := textEntry.CPU.(*core.MLQ)
	if winRestored.Tree().Inserts() != winModel.Tree().Inserts() {
		t.Fatal("training history lost across restart")
	}

	// The restored models predict identically to the pre-restart ones.
	for i := 0; i < 100; i++ {
		p := geom.Point{rng.Float64() * 400, rng.Float64() * 400}
		a, _ := winModel.Predict(p)
		b, _ := winRestored.Predict(p)
		if a != b {
			t.Fatalf("restored model diverged at %v: %g vs %g", p, a, b)
		}
	}

	// --- Session 2: the warm-started plan must not cost more than the
	// cold-started one did (knowledge carried over; both plans must agree
	// on results).
	res2, err := engine.ExecuteQuery(table, buildPreds(winRestored, textRestored), engine.OrderByRank)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Selected != res1.Selected {
		t.Fatalf("restarted session selected %d rows, first session %d", res2.Selected, res1.Selected)
	}
	if res2.TotalCost > res1.TotalCost*1.1 {
		t.Errorf("warm-started session cost %.0f, cold session %.0f; knowledge not reused",
			res2.TotalCost, res1.TotalCost)
	}
	// Models kept learning in session 2.
	if winRestored.Tree().Inserts() <= winModel.Tree().Inserts() {
		t.Error("restored model did not continue learning")
	}
	if err := winRestored.Tree().Validate(); err != nil {
		t.Error(err)
	}
}
