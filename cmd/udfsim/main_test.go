package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run(300, 1, 1843, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("clamp(%g) = %g, want %g", c.v, got, c.want)
		}
	}
}
