// Command udfsim runs the paper's motivating scenario end to end (§1): a
// query with two expensive UDF predicates — a spatial window search and a
// keyword text search — over a table of query parameters. It executes the
// query twice: once with the naive predicate order and once with the
// self-tuning, cost-model-driven rank order, and reports the speedup.
//
// This is the full Figure 1 loop in one binary: the optimizer consults the
// MLQ estimators, the engine executes the UDFs for real against the page
// store and buffer cache, and every actual cost feeds back into the models.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
	"mlq/internal/spatialdb"
	"mlq/internal/telemetry"
	"mlq/internal/textdb"
)

func main() {
	rows := flag.Int("rows", 3000, "table size (number of simulated queries)")
	seed := flag.Int64("seed", 1, "random seed")
	mem := flag.Int("mem", 1843, "cost-model memory limit in bytes")
	telemetryAddr := flag.String("telemetry", "", "serve live metrics on this address while the queries run (e.g. localhost:9090; empty disables)")
	traceOut := flag.String("trace-out", "", "write feedback-loop trace spans as JSONL to this file (empty disables)")
	flag.Parse()

	var reg *telemetry.Registry
	var sink io.Writer
	if *telemetryAddr != "" {
		reg = telemetry.New()
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "udfsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving %s\n", srv.URL())
		defer srv.Close()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "udfsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	var tr *telemetry.Tracer
	if reg != nil || sink != nil {
		tr = telemetry.NewTracer(reg, nil, sink)
	}

	if err := run(*rows, *seed, *mem, reg, tr); err != nil {
		fmt.Fprintln(os.Stderr, "udfsim:", err)
		os.Exit(1)
	}
}

func run(rows int, seed int64, mem int, reg *telemetry.Registry, tr *telemetry.Tracer) error {
	fmt.Println("building substrates (text corpus + spatial map)...")
	tdb, err := textdb.Generate(textdb.Config{Seed: seed})
	if err != nil {
		return err
	}
	sdb, err := spatialdb.Generate(spatialdb.Config{Seed: seed + 1})
	if err != nil {
		return err
	}

	// The table: each row holds the parameters of one incoming request —
	// a map location (x, y) and a keyword rank. Rows cluster around a hot
	// city center, so the window search is expensive for most rows.
	rng := rand.New(rand.NewSource(seed + 2))
	table := &engine.Table{Name: "requests"}
	for i := 0; i < rows; i++ {
		x := 500 + rng.NormFloat64()*120
		y := 500 + rng.NormFloat64()*120
		rank := rng.Float64() * float64(tdb.VocabSize())
		table.Rows = append(table.Rows, engine.Row{clamp(x, 0, 999), clamp(y, 0, 999), rank})
	}

	newModel := func(lo, hi geom.Point) (core.Model, error) {
		region, err := geom.NewRect(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("model region: %w", err)
		}
		return core.NewMLQ(quadtree.Config{
			Region:      region,
			Strategy:    quadtree.Lazy,
			MemoryLimit: mem,
		})
	}

	build := func() ([]*engine.Predicate, error) {
		winModel, err := newModel(geom.Point{0, 0}, geom.Point{1000, 1000})
		if err != nil {
			return nil, err
		}
		textModel, err := newModel(geom.Point{0}, geom.Point{float64(tdb.VocabSize())})
		if err != nil {
			return nil, err
		}
		// Predicate 1 (expensive, unselective): "at least one urban
		// area within a 40x40 window of the request location".
		winPred := &engine.Predicate{
			Name: "NearUrbanArea",
			Exec: func(row engine.Row) (bool, float64) {
				objs, stats, err := sdb.Window(row[0]-20, row[1]-20, 40, 40)
				if err != nil {
					// No error channel in Exec: report on stderr and
					// fail the row instead of crashing the CLI with a
					// stack trace.
					fmt.Fprintln(os.Stderr, "udfsim: NearUrbanArea failed:", err)
					return false, 0
				}
				return len(objs) > 0, stats.CPU + 10*stats.IO
			},
			Point: func(row engine.Row) geom.Point { return geom.Point{row[0], row[1]} },
			Model: winModel,
		}
		// Predicate 2 (cheap, selective): "the request's two keywords
		// co-occur in at least 3 documents". Requests use the rarer
		// half of the vocabulary, so posting lists are short and the
		// search is cheap — the predicate a cost-aware plan runs first.
		textPred := &engine.Predicate{
			Name: "KeywordsCooccur",
			Exec: func(row engine.Row) (bool, float64) {
				w := tdb.VocabSize()/2 + int(row[2])/2
				docs, stats, err := tdb.SearchSimple([]int{w, tdb.VocabSize()/2 + (w+37)%(tdb.VocabSize()/2)})
				if err != nil {
					fmt.Fprintln(os.Stderr, "udfsim: KeywordsCooccur failed:", err)
					return false, 0
				}
				return len(docs) >= 3, stats.CPU + 10*stats.IO
			},
			Point: func(row engine.Row) geom.Point { return geom.Point{row[2]} },
			Model: textModel,
		}
		// Naive order: window search first (the plan a cost-blind
		// optimizer might pick since the predicate was written first).
		return []*engine.Predicate{winPred, textPred}, nil
	}

	fmt.Printf("executing query over %d rows, naive predicate order...\n", rows)
	naivePreds, err := build()
	if err != nil {
		return err
	}
	naive, err := engine.ExecuteQueryTraced(table, naivePreds, engine.OrderAsGiven, tr)
	if err != nil {
		return err
	}

	fmt.Println("executing the same query with self-tuning rank ordering...")
	tunedPreds, err := build()
	if err != nil {
		return err
	}
	// Only the self-tuned plan is instrumented: its predicates, model trees
	// and the page caches publish live while the query runs.
	for _, p := range tunedPreds {
		p.Instrument(reg)
		if mlq, ok := p.Model.(*core.MLQ); ok {
			mlq.Tree().Instrument(reg, tr, telemetry.L("udf", p.Name))
		}
	}
	if reg != nil {
		tdb.Cache().Instrument(reg, telemetry.L("db", "text"))
		sdb.Cache().Instrument(reg, telemetry.L("db", "spatial"))
	}
	tuned, err := engine.ExecuteQueryTraced(table, tunedPreds, engine.OrderByRank, tr)
	if err != nil {
		return err
	}

	if naive.Selected != tuned.Selected {
		return fmt.Errorf("plans disagree: naive selected %d, tuned %d", naive.Selected, tuned.Selected)
	}
	fmt.Println()
	fmt.Printf("rows selected:            %d\n", naive.Selected)
	fmt.Printf("naive plan total cost:    %.0f work units\n", naive.TotalCost)
	fmt.Printf("self-tuned plan cost:     %.0f work units\n", tuned.TotalCost)
	fmt.Printf("speedup:                  %.2fx\n", naive.TotalCost/tuned.TotalCost)
	fmt.Println()
	for _, p := range tunedPreds {
		fmt.Printf("%-16s selectivity=%.3f mean cost=%.1f evaluations=%d\n",
			p.Name, p.Selectivity(), p.MeanCost(), p.Evaluated())
	}
	mlq := tunedPreds[0].Model.(*core.MLQ)
	c := mlq.Costs()
	fmt.Printf("\n%s model for NearUrbanArea: %d nodes, %d B, APC=%v, AUC=%v\n",
		mlq.Name(), mlq.Tree().NodeCount(), mlq.MemoryUsed(), c.APC(), c.AUC())
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
