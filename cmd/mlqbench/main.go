// Command mlqbench regenerates the paper's evaluation (§5): every figure's
// table is printed from a fresh run of the corresponding experiment.
//
// Usage:
//
//	mlqbench [-exp all|fig8|fig9|fig10|fig11|fig12|ablate] [-quick] [-seed N]
//
// Figures 9, 10(a), 11(a) and 12 execute the six "real" UDFs — the text and
// spatial search engines built in this repository — for every query, so a
// full run takes a few minutes; -quick shrinks the workloads ~10x while
// preserving the qualitative shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mlq/internal/dist"
	"mlq/internal/events"
	"mlq/internal/harness"
	"mlq/internal/spatialdb"
	"mlq/internal/telemetry"
	"mlq/internal/textdb"
	"mlq/internal/udf"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig8, fig9, fig10, fig11, fig12, shift, nn, leo, memcurve, memwall, cache, chaos, chaoslatency, chaosrepl, chaosnet, ablate, concurrency (concurrency is excluded from all: its numbers are machine-dependent wall-clock throughput)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "shrink workloads ~10x for a fast smoke run")
	queries := flag.Int("queries", 0, "override the test-workload length (0 = paper's values)")
	mem := flag.Int("mem", 0, "override the model memory limit in bytes (0 = paper's 1.8 KB)")
	trials := flag.Int("trials", 1, "replicate accuracy cells across N seeds (fig8 reports mean±std)")
	telemetryAddr := flag.String("telemetry", "", "serve live metrics on this address while experiments run (e.g. localhost:9090, :0 for a free port; empty disables)")
	traceOut := flag.String("trace-out", "", "write feedback-loop trace spans as JSONL to this file (empty disables)")
	eventsDir := flag.String("events-dir", "", "record the causal event spine: flight-recorder dumps land in this directory and a final events.mlqbb export is written on exit (empty disables)")
	flag.Parse()

	reg, tr, cleanup, err := setupTelemetry(*telemetryAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlqbench:", err)
		os.Exit(1)
	}
	defer cleanup()

	rec, err := setupEvents(*eventsDir, *seed, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlqbench:", err)
		os.Exit(1)
	}

	if err := run(*exp, *seed, *quick, *queries, *mem, *trials, reg, tr, rec); err != nil {
		fmt.Fprintln(os.Stderr, "mlqbench:", err)
		os.Exit(1)
	}

	if err := exportEvents(*eventsDir, rec); err != nil {
		fmt.Fprintln(os.Stderr, "mlqbench:", err)
		os.Exit(1)
	}
}

// setupEvents builds the causal event spine when -events-dir is set: fault
// triggers auto-dump black boxes into the directory, and exportEvents writes
// the final ring contents on exit so a healthy run still leaves a trace to
// decode with `mlqtool trace`.
func setupEvents(dir string, seed int64, reg *telemetry.Registry) (*events.Recorder, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating events dir: %w", err)
	}
	// 8192 slots per subsystem (512 KiB each): the replica ring sees up to
	// eight events per observation (sends, receives, applies, epochs across
	// the fleet) and chaos transports deliver in bursts, so the default ring
	// would evict an observation's early hops before its late ones land.
	rec := events.New(events.Config{Seed: uint64(seed), DumpDir: dir, RingSize: 8192})
	if reg != nil {
		rec.Instrument(reg)
	}
	return rec, nil
}

// exportEvents writes the spine's final state to events.mlqbb in the dir.
func exportEvents(dir string, rec *events.Recorder) error {
	if rec == nil {
		return nil
	}
	path := filepath.Join(dir, "events.mlqbb")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("exporting events: %w", err)
	}
	if err := rec.DumpTo(f, "run-complete"); err != nil {
		f.Close()
		return fmt.Errorf("exporting events: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("exporting events: %w", err)
	}
	fmt.Fprintf(os.Stderr, "events: exported %s (decode with `mlqtool trace -dump %s`)\n", path, path)
	return nil
}

// setupTelemetry starts the exposition server and trace sink per the CLI
// flags. All returns are nil/no-op when both flags are empty.
func setupTelemetry(addr, traceOut string) (*telemetry.Registry, *telemetry.Tracer, func(), error) {
	cleanup := func() {}
	var reg *telemetry.Registry
	var sink io.Writer
	if addr != "" {
		reg = telemetry.New()
		srv, err := telemetry.Serve(addr, reg)
		if err != nil {
			return nil, nil, cleanup, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving %s\n", srv.URL())
		cleanup = func() { srv.Close() }
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			cleanup()
			return nil, nil, func() {}, fmt.Errorf("opening trace sink: %w", err)
		}
		sink = f
		prev := cleanup
		cleanup = func() { prev(); f.Close() }
	}
	var tr *telemetry.Tracer
	if reg != nil || sink != nil {
		tr = telemetry.NewTracer(reg, nil, sink)
	}
	return reg, tr, cleanup, nil
}

func run(exp string, seed int64, quick bool, queries, mem, trials int, reg *telemetry.Registry, tr *telemetry.Tracer, rec *events.Recorder) error {
	synthOpts := harness.Options{Seed: seed, Queries: 5000, MemoryLimit: mem, Trials: trials, Telemetry: reg, Tracer: tr, Events: rec}
	realOpts := harness.Options{Seed: seed, Queries: 2500, MemoryLimit: mem, Telemetry: reg, Tracer: tr, Events: rec}
	if quick {
		synthOpts.Queries, realOpts.Queries = 600, 400
	}
	if queries > 0 {
		synthOpts.Queries, realOpts.Queries = queries, queries
	}

	needReal := exp == "all" || exp == "fig9" || exp == "fig10" || exp == "fig11" || exp == "fig12"
	var udfs []udf.UDF
	var winUDF udf.UDF
	if needReal {
		fmt.Fprintln(os.Stderr, "building text corpus and spatial map...")
		start := time.Now()
		tdb, err := textdb.Generate(textdb.Config{Seed: seed})
		if err != nil {
			return err
		}
		sdb, err := spatialdb.Generate(spatialdb.Config{Seed: seed + 1})
		if err != nil {
			return err
		}
		udfs = append(tdb.UDFs(), sdb.UDFs()...)
		winUDF = sdb.UDFs()[1]
		fmt.Fprintf(os.Stderr, "substrates ready in %v (%d docs, %d objects, %d disk pages)\n\n",
			time.Since(start).Round(time.Millisecond), tdb.NumDocs(), sdb.NumObjects(),
			tdb.Store().NumPages()+sdb.Store().NumPages())
	}

	did := false
	// registered accumulates every experiment name runExp sees, so an unknown
	// -exp can print the real list instead of a hand-maintained one that
	// drifts. "all" and "concurrency" are dispatched outside runExp.
	registered := []string{"all", "concurrency"}
	runExp := func(name string, fn func() error) error {
		registered = append(registered, name)
		if exp != "all" && exp != name {
			return nil
		}
		did = true
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := runExp("fig8", func() error {
		rows, err := harness.Fig8(nil, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderFig8(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("fig9", func() error {
		rows, err := harness.Fig9(udfs, realOpts)
		if err != nil {
			return err
		}
		harness.RenderFig9(os.Stdout, "Figure 9: prediction accuracy (NAE), real UDFs, CPU cost", rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("fig10", func() error {
		real, err := harness.Fig10Real(winUDF, realOpts)
		if err != nil {
			return err
		}
		harness.RenderFig10(os.Stdout, "Figure 10(a): modeling costs, real UDF (WIN), uniform queries", real)
		fmt.Println()
		synth, err := harness.Fig10Synthetic(synthOpts)
		if err != nil {
			return err
		}
		harness.RenderFig10(os.Stdout, "Figure 10(b): modeling costs, synthetic UDF, uniform queries", synth)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("fig11", func() error {
		real, err := harness.Fig11a(udfs, realOpts)
		if err != nil {
			return err
		}
		harness.RenderFig9(os.Stdout, "Figure 11(a): prediction accuracy (NAE), real UDFs, disk IO cost, beta=10", real)
		fmt.Println()
		synth, err := harness.Fig11b(nil, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderFig11b(os.Stdout, synth)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("fig12", func() error {
		synth, err := harness.Fig12Synthetic(25, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderFig12(os.Stdout, "Figure 12: prediction error vs data points processed (synthetic, uniform)", synth)
		fmt.Println()
		real, err := harness.Fig12Real(winUDF, 25, realOpts)
		if err != nil {
			return err
		}
		harness.RenderFig12(os.Stdout, "Figure 12: prediction error vs data points processed (WIN, uniform)", real)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("shift", func() error {
		series, err := harness.Shift(16, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderShift(os.Stdout, series)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("nn", func() error {
		rows, err := harness.NNComparison(dist.KindGaussianRandom, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderNN(os.Stdout, dist.KindGaussianRandom.String(), rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("cache", func() error {
		rows, err := harness.CachePolicies(realOpts)
		if err != nil {
			return err
		}
		harness.RenderCachePolicies(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("memcurve", func() error {
		rows, err := harness.MemCurve(nil, dist.KindGaussianRandom, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderMemCurve(os.Stdout, dist.KindGaussianRandom.String(), rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("memwall", func() error {
		rows, err := harness.MemWall(harness.MemWallConfig{}, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderMemWall(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("leo", func() error {
		rows, err := harness.LEOComparison(dist.KindGaussianRandom, synthOpts)
		if err != nil {
			return err
		}
		harness.RenderLEO(os.Stdout, dist.KindGaussianRandom.String(), rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("chaos", func() error {
		// Chaos builds its own databases: its page-read fault hooks must
		// never touch the stores the other experiments share.
		rows, err := harness.Chaos(harness.ChaosConfig{}, realOpts)
		if err != nil {
			return err
		}
		harness.RenderChaos(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("chaoslatency", func() error {
		// Like chaos, this experiment builds its own databases: the latency
		// hooks and retry policies it installs must never touch the caches
		// the other experiments share.
		rows, err := harness.ChaosLatency(harness.ChaosLatencyConfig{}, realOpts)
		if err != nil {
			return err
		}
		harness.RenderChaosLatency(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("chaosrepl", func() error {
		// The replication chaos experiment is self-contained: it builds its
		// own replica groups, journals and checkpoints in a scratch dir and
		// asserts byte-identical convergence internally.
		rows, err := harness.ChaosRepl(harness.ChaosReplConfig{}, realOpts)
		if err != nil {
			return err
		}
		harness.RenderChaosRepl(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("chaosnet", func() error {
		// The same fault stories as chaosrepl, carried over real loopback
		// sockets: reconnect/backoff, heartbeat liveness, CRC framing and the
		// resumable snapshot bootstrap are load-bearing here.
		rows, err := harness.ChaosNet(harness.ChaosNetConfig{}, realOpts)
		if err != nil {
			return err
		}
		harness.RenderChaosNet(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	if err := runExp("ablate", func() error {
		for _, param := range harness.AblationParams() {
			rows, err := harness.Ablate(param, nil, synthOpts)
			if err != nil {
				return err
			}
			harness.RenderAblation(os.Stdout, rows)
			fmt.Println()
		}
		return nil
	}); err != nil {
		return err
	}

	// The concurrency experiment is deliberately not part of "all": every
	// number it prints is machine-dependent wall-clock throughput, so folding
	// it into the default run would make `mlqbench` output unstable across
	// hosts without adding any figure the paper reproduces.
	if exp == "concurrency" {
		did = true
		start := time.Now()
		rows, err := harness.Concurrency(nil, synthOpts)
		if err != nil {
			return fmt.Errorf("concurrency: %w", err)
		}
		harness.RenderConcurrency(os.Stdout, rows)
		fmt.Printf("[concurrency completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	if !did {
		sort.Strings(registered)
		return fmt.Errorf("unknown experiment %q; registered experiments:\n  %s",
			exp, strings.Join(registered, "\n  "))
	}
	return nil
}
