package main

import "testing"

// The experiment plumbing is covered in internal/harness; these tests pin
// the CLI wiring: every experiment name resolves and runs end to end on a
// tiny workload.
func TestRunEachExperiment(t *testing.T) {
	for _, exp := range []string{"fig8", "fig10", "fig12", "shift", "nn", "leo", "ablate"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 1, true, 120, 0, 1); err != nil {
				t.Fatalf("run(%q): %v", exp, err)
			}
		})
	}
}

func TestRunRealExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full substrates")
	}
	for _, exp := range []string{"fig9", "fig11", "chaos"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 1, true, 60, 0, 1); err != nil {
				t.Fatalf("run(%q): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", 1, true, 50, 0, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunMemoryOverride(t *testing.T) {
	if err := run("fig8", 2, true, 100, 4096, 2); err != nil {
		t.Fatal(err)
	}
}
