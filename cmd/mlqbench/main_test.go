package main

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlq/internal/telemetry"
)

// The experiment plumbing is covered in internal/harness; these tests pin
// the CLI wiring: every experiment name resolves and runs end to end on a
// tiny workload.
func TestRunEachExperiment(t *testing.T) {
	for _, exp := range []string{"fig8", "fig10", "fig12", "shift", "nn", "leo", "ablate"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 1, true, 120, 0, 1, nil, nil, nil); err != nil {
				t.Fatalf("run(%q): %v", exp, err)
			}
		})
	}
}

func TestRunRealExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full substrates")
	}
	for _, exp := range []string{"fig9", "fig11", "chaos"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 1, true, 60, 0, 1, nil, nil, nil); err != nil {
				t.Fatalf("run(%q): %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", 1, true, 50, 0, 1, nil, nil, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunMemoryOverride(t *testing.T) {
	if err := run("fig8", 2, true, 100, 4096, 2, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// chaosSeries are the exposition families the chaos run must surface, one
// per instrumented layer: quadtree shape, engine feedback loop, buffer
// cache, and the rolling model-accuracy tracker.
var chaosSeries = []string{
	"mlq_quadtree_memory_utilization{",
	"mlq_quadtree_compressions_total{",
	"mlq_engine_predictions_total{",
	"mlq_engine_observations_total{",
	"mlq_engine_breaker_open{",
	"mlq_buffercache_hit_ratio{",
	"mlq_model_nae{",
}

// TestTelemetryScrapeMidRun runs the chaos experiment with a live exposition
// server and scrapes /metrics over HTTP while it executes, checking every
// instrumented layer is visible to an external observer with sane values.
func TestTelemetryScrapeMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the chaos substrates")
	}
	reg := telemetry.New()
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := telemetry.NewTracer(reg, nil, nil)

	done := make(chan error, 1)
	go func() { done <- run("chaos", 1, true, 60, 0, 1, reg, tr, nil) }()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL())
		if err != nil {
			t.Fatalf("scraping %s: %v", srv.URL(), err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	hasAll := func(body string) bool {
		for _, s := range chaosSeries {
			if !strings.Contains(body, s) {
				return false
			}
		}
		return true
	}

	// Poll mid-run until every layer's series has appeared (or the run
	// ends first — the final scrape below still asserts everything).
	running := true
	for running && !hasAll(scrape()) {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		case <-time.After(20 * time.Millisecond):
		}
	}
	if running {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	body := scrape()
	for _, s := range chaosSeries {
		if !strings.Contains(body, s) {
			t.Errorf("series %q missing from exposition", s)
		}
	}
	if got := seriesSum(t, body, "mlq_engine_predictions_total{"); got <= 0 {
		t.Errorf("predictions total = %g, want > 0", got)
	}
	if got := seriesSum(t, body, "mlq_engine_observations_total{"); got <= 0 {
		t.Errorf("observations total = %g, want > 0", got)
	}
	if got := seriesMax(t, body, "mlq_quadtree_memory_utilization{"); got <= 0 || got > 1.0001 {
		t.Errorf("memory utilization = %g, want in (0, 1]", got)
	}
	if got := seriesSum(t, body, "mlq_quadtree_compressions_total{"); got <= 0 {
		t.Errorf("compressions total = %g, want > 0 (the 1.8 KB budget forces passes)", got)
	}
	if got := seriesMax(t, body, "mlq_buffercache_hit_ratio{"); got < 0 || got > 1 {
		t.Errorf("hit ratio = %g, want in [0, 1]", got)
	}
	for _, line := range seriesLines(body, "mlq_engine_breaker_open{") {
		v := lineValue(t, line)
		if v != 0 && v != 1 {
			t.Errorf("breaker gauge = %g, want 0 or 1: %s", v, line)
		}
	}
	if lines := seriesLines(body, "mlq_model_nae{"); len(lines) == 0 {
		t.Error("no rolling NAE series")
	} else {
		for _, line := range lines {
			if v := lineValue(t, line); v < 0 {
				t.Errorf("NAE = %g, want >= 0: %s", v, line)
			}
		}
	}
}

func seriesLines(body, prefix string) []string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			out = append(out, line)
		}
	}
	return out
}

func lineValue(t *testing.T, line string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", line, err)
	}
	return v
}

func seriesSum(t *testing.T, body, prefix string) float64 {
	t.Helper()
	var sum float64
	for _, line := range seriesLines(body, prefix) {
		sum += lineValue(t, line)
	}
	return sum
}

func seriesMax(t *testing.T, body, prefix string) float64 {
	t.Helper()
	max := -1.0
	for _, line := range seriesLines(body, prefix) {
		if v := lineValue(t, line); v > max {
			max = v
		}
	}
	return max
}
