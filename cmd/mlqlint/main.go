// Command mlqlint is the project's static-analysis driver. It enforces the
// cost-model invariants the paper's feedback loop assumes — no panics in
// library code, finite costs, seeded randomness, deterministic planning, no
// dropped errors at the feedback seams — and, since the loop went
// concurrent, the concurrency invariants the epoch/snapshot publisher and
// the replica fleet depend on: an acyclic lock-acquisition graph, goroutines
// with shutdown paths, atomic-access discipline, and single-owner channels.
// All of it uses only the standard library's go/ast, go/parser and go/types.
//
// Usage:
//
//	mlqlint [flags] [patterns...]
//
// Patterns are package directories relative to the module root, with /...
// for recursion; the default is ./... (the whole module). Exit status is 0
// when clean, 1 when findings were reported, 2 on a load or usage error.
//
// Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-sarif           emit findings as a SARIF 2.1.0 log (for CI annotation)
//	-list            list the analyzers and exit
//	-suppressions    audit mode: inventory every //lint:ignore site and exit
//	-only a,b,...    enable exactly the named analyzers
//	-<analyzer>=false disable one analyzer (one bool flag per analyzer)
//
// Findings are suppressed at the site with a justified comment on the
// offending line, the line above, or the line above a multi-line statement:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mlq/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mlqlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	list := fs.Bool("list", false, "list analyzers and exit")
	audit := fs.Bool("suppressions", false, "inventory every //lint:ignore site and exit")
	only := fs.String("only", "", "comma-separated analyzer names to enable exclusively")
	all := lint.All()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name()] = fs.Bool(a.Name(), true, "enable the "+a.Name()+" analyzer: "+a.Doc())
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "mlqlint: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	known := make(map[string]bool, len(all))
	for _, a := range all {
		known[a.Name()] = true
	}
	var active []lint.Analyzer
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "mlqlint: -only names unknown analyzer %q\n", name)
				return 2
			}
			want[name] = true
		}
		for _, a := range all {
			if want[a.Name()] {
				active = append(active, a)
			}
		}
	} else {
		for _, a := range all {
			if *enabled[a.Name()] {
				active = append(active, a)
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlqlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlqlint:", err)
		return 2
	}

	if *audit {
		return auditSuppressions(pkgs, known)
	}

	findings := lint.Run(pkgs, active)
	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mlqlint:", err)
			return 2
		}
	case *sarifOut:
		root, _ := os.Getwd()
		if err := lint.WriteSARIF(os.Stdout, active, findings, root); err != nil {
			fmt.Fprintln(os.Stderr, "mlqlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "mlqlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// auditSuppressions prints every //lint:ignore site with the analyzers it
// silences and the stated reason — the repo's ledger of locally waived
// invariants. Directives naming analyzers that do not exist are called out:
// they suppress nothing and usually mark a typo. Reasons shorter than
// lint.MinReasonWords words are findings (exit 1): "unreachable" tells the
// next reader nothing about which invariant was waived or why it holds.
func auditSuppressions(pkgs []*lint.Package, known map[string]bool) int {
	sites := lint.SuppressionSites(pkgs)
	short := 0
	for _, s := range sites {
		fmt.Printf("%s:%d: %s: %s\n", s.Pos.Filename, s.Pos.Line, strings.Join(s.Analyzers, ","), s.Reason)
		for _, name := range s.Analyzers {
			if !known[name] && name != "all" {
				fmt.Fprintf(os.Stderr, "mlqlint: %s:%d: directive names unknown analyzer %q\n", s.Pos.Filename, s.Pos.Line, name)
			}
		}
		if s.ReasonTooShort() {
			short++
			fmt.Fprintf(os.Stderr, "mlqlint: %s:%d: suppression reason %q is too short (want >= %d words naming the waived invariant and why it holds)\n",
				s.Pos.Filename, s.Pos.Line, s.Reason, lint.MinReasonWords)
		}
	}
	fmt.Fprintf(os.Stderr, "mlqlint: %d suppression site(s), %d with too-short reasons\n", len(sites), short)
	if short > 0 {
		return 1
	}
	return 0
}
