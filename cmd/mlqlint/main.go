// Command mlqlint is the project's static-analysis driver. It enforces the
// cost-model invariants the paper's feedback loop assumes — no panics in
// library code, finite costs, seeded randomness, deterministic planning,
// and no dropped errors at the feedback seams — using only the standard
// library's go/ast, go/parser and go/types.
//
// Usage:
//
//	mlqlint [flags] [patterns...]
//
// Patterns are package directories relative to the module root, with /...
// for recursion; the default is ./... (the whole module). Exit status is 0
// when clean, 1 when findings were reported, 2 on a load or usage error.
//
// Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-list            list the analyzers and exit
//	-<analyzer>=false disable one analyzer (one bool flag per analyzer)
//
// Findings are suppressed at the site with a justified comment on the
// offending line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mlq/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mlqlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	all := lint.All()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name()] = fs.Bool(a.Name(), true, "enable the "+a.Name()+" analyzer: "+a.Doc())
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	var active []lint.Analyzer
	for _, a := range all {
		if *enabled[a.Name()] {
			active = append(active, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlqlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlqlint:", err)
		return 2
	}

	findings := lint.Run(pkgs, active)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mlqlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "mlqlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
