package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlq/internal/geom"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParsePoint(t *testing.T) {
	p, err := parsePoint("1, 2.5,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != 1 || p[1] != 2.5 || p[2] != 3 {
		t.Errorf("parsePoint = %v", p)
	}
	if _, err := parsePoint(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := parsePoint("1,x"); err == nil {
		t.Error("garbage coordinate accepted")
	}
}

func TestTrainPredictStatsDump(t *testing.T) {
	dir := t.TempDir()
	train := writeFile(t, dir, "train.csv", "# x,y,cost\n1,1,5\n2,2,10\n8,8,50\n8,9,60\n")
	queries := writeFile(t, dir, "q.csv", "1,1\n8,8\n")
	model := filepath.Join(dir, "m.mlq")

	if err := cmdTrain([]string{"-model", model, "-data", train, "-lo", "0,0", "-hi", "10,10", "-lazy"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model file not written")
	}
	if err := cmdPredict([]string{"-model", model, "-data", queries}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPredict([]string{"-model", model, "-data", queries, "-beta", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-model", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDump([]string{"-model", model}); err != nil {
		t.Fatal(err)
	}

	// The persisted model must make the expected predictions.
	m, err := loadModel(model)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MLQ-L" {
		t.Errorf("model name %q, want MLQ-L (trained with -lazy)", m.Name())
	}
	if got, _ := m.Predict(geom.Point{1, 1}); got != 5 {
		t.Errorf("predict(1,1) = %g, want 5", got)
	}
}

func TestTrainValidation(t *testing.T) {
	dir := t.TempDir()
	train := writeFile(t, dir, "train.csv", "1,1,5\n")
	model := filepath.Join(dir, "m.mlq")
	cases := [][]string{
		{},
		{"-model", model},
		{"-model", model, "-data", train},
		{"-model", model, "-data", train, "-lo", "0,0"},
		{"-model", model, "-data", train, "-lo", "0,0", "-hi", "bad"},
		{"-model", model, "-data", train, "-lo", "1,1", "-hi", "0,0"},
		{"-model", model, "-data", filepath.Join(dir, "missing.csv"), "-lo", "0,0", "-hi", "1,1"},
	}
	for i, args := range cases {
		if err := cmdTrain(args); err == nil {
			t.Errorf("case %d: bad train args accepted: %v", i, args)
		}
	}
	// Wrong CSV width.
	bad := writeFile(t, dir, "bad.csv", "1,2\n")
	if err := cmdTrain([]string{"-model", model, "-data", bad, "-lo", "0,0", "-hi", "10,10"}); err == nil {
		t.Error("wrong-width CSV accepted")
	}
	// Non-numeric field.
	nonNum := writeFile(t, dir, "nonnum.csv", "1,2,x\n")
	if err := cmdTrain([]string{"-model", model, "-data", nonNum, "-lo", "0,0", "-hi", "10,10"}); err == nil {
		t.Error("non-numeric CSV accepted")
	}
}

func TestPredictValidation(t *testing.T) {
	dir := t.TempDir()
	if err := cmdPredict([]string{}); err == nil {
		t.Error("missing flags accepted")
	}
	garbage := writeFile(t, dir, "bad.mlq", "not a model at all")
	q := writeFile(t, dir, "q.csv", "1,1\n")
	if err := cmdPredict([]string{"-model", garbage, "-data", q}); err == nil {
		t.Error("garbage model accepted")
	}
	if err := cmdStats([]string{"-model", garbage}); err == nil {
		t.Error("garbage model accepted by stats")
	}
	if err := cmdDump([]string{"-model", garbage}); err == nil {
		t.Error("garbage model accepted by dump")
	}
	if err := cmdStats([]string{}); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Error("stats without -model accepted")
	}
	if err := cmdDump([]string{}); err == nil {
		t.Error("dump without -model accepted")
	}
}

func TestTrainSHAndCatalog(t *testing.T) {
	dir := t.TempDir()
	train := writeFile(t, dir, "train.csv", "1,1,5\n2,2,10\n8,8,50\n")
	mlqModel := filepath.Join(dir, "m.mlq")
	shModel := filepath.Join(dir, "m.shh")
	cat := filepath.Join(dir, "models.cat")

	if err := cmdTrain([]string{"-model", mlqModel, "-data", train, "-lo", "0,0", "-hi", "10,10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrainSH([]string{"-model", shModel, "-data", train, "-lo", "0,0", "-hi", "10,10", "-height"}); err != nil {
		t.Fatal(err)
	}

	// Both model kinds load through the sniffing loader.
	m1, err := loadAnyModel(mlqModel)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Name() != "MLQ-E" {
		t.Errorf("mlq model name %q", m1.Name())
	}
	m2, err := loadAnyModel(shModel)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name() != "SH-H" {
		t.Errorf("sh model name %q", m2.Name())
	}

	// Catalog round trip through the CLI.
	if err := cmdCatalog([]string{"put", "-catalog", cat, "-name", "WIN", "-cpu", mlqModel, "-io", shModel}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCatalog([]string{"put", "-catalog", cat, "-name", "KNN", "-cpu", shModel}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCatalog([]string{"list", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	c, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("catalog holds %d entries, want 2", c.Len())
	}
	e, ok := c.Get("WIN")
	if !ok || e.CPU.Name() != "MLQ-E" || e.IO.Name() != "SH-H" {
		t.Fatal("WIN entry malformed after CLI round trip")
	}
	if err := cmdCatalog([]string{"rm", "-catalog", cat, "-name", "KNN"}); err != nil {
		t.Fatal(err)
	}
	c, _ = loadCatalog(cat)
	if c.Len() != 1 {
		t.Errorf("catalog holds %d entries after rm, want 1", c.Len())
	}
}

func TestCatalogCLIValidation(t *testing.T) {
	dir := t.TempDir()
	if err := cmdCatalog(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := cmdCatalog([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := cmdCatalogPut([]string{}); err == nil {
		t.Error("put without flags accepted")
	}
	if err := cmdCatalogList([]string{}); err == nil {
		t.Error("list without flags accepted")
	}
	if err := cmdCatalogRm([]string{"-catalog", filepath.Join(dir, "none.cat"), "-name", "X"}); err == nil {
		t.Error("rm of missing entry accepted")
	}
	garbage := writeFile(t, dir, "bad.bin", "garbage")
	if _, err := loadAnyModel(garbage); err == nil {
		t.Error("garbage model accepted by sniffing loader")
	}
	if err := cmdTrainSH([]string{}); err == nil {
		t.Error("train-sh without flags accepted")
	}
}
