package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"mlq/internal/catalog"
	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/histogram"
)

// This file adds static-histogram training and catalog management:
//
//	mlqtool train-sh -model m.shh -data obs.csv -lo ... -hi ... [-height]
//	mlqtool catalog put  -catalog c.cat -name WIN -cpu m1.mlq [-io m2.mlq]
//	mlqtool catalog list -catalog c.cat
//	mlqtool catalog rm   -catalog c.cat -name WIN

func cmdTrainSH(args []string) error {
	fs := flag.NewFlagSet("train-sh", flag.ExitOnError)
	modelPath := fs.String("model", "", "output model file")
	dataPath := fs.String("data", "", "training CSV: x1,...,xd,cost")
	loStr := fs.String("lo", "", "lower bounds, comma separated")
	hiStr := fs.String("hi", "", "upper bounds, comma separated")
	height := fs.Bool("height", false, "equi-height (SH-H) instead of equi-width (SH-W)")
	mem := fs.Int("mem", 1843, "memory limit in bytes")
	fs.Parse(args)
	if *modelPath == "" || *dataPath == "" || *loStr == "" || *hiStr == "" {
		return fmt.Errorf("train-sh requires -model, -data, -lo and -hi")
	}
	lo, err := parsePoint(*loStr)
	if err != nil {
		return fmt.Errorf("-lo: %w", err)
	}
	hi, err := parsePoint(*hiStr)
	if err != nil {
		return fmt.Errorf("-hi: %w", err)
	}
	region, err := geom.NewRect(lo, hi)
	if err != nil {
		return err
	}
	var samples []histogram.Sample
	err = readRows(*dataPath, region.Dims()+1, func(rec []float64) error {
		samples = append(samples, histogram.Sample{
			Point: geom.Point(rec[:len(rec)-1]).Clone(),
			Value: rec[len(rec)-1],
		})
		return nil
	})
	if err != nil {
		return err
	}
	kind := histogram.EquiWidth
	if *height {
		kind = histogram.EquiHeight
	}
	h, err := histogram.Train(kind, histogram.Config{Region: region, MemoryLimit: *mem}, samples)
	if err != nil {
		return err
	}
	out, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if _, err := h.WriteTo(out); err != nil {
		return err
	}
	fmt.Printf("trained %s on %d samples: %d intervals/dim, %d buckets, %d B\n",
		h.Name(), len(samples), h.Intervals(), h.Buckets(), h.MemoryUsed())
	return nil
}

// loadAnyModel loads either an MLQ model or a histogram by sniffing magic.
func loadAnyModel(path string) (core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if m, err := core.ReadMLQ(f); err == nil {
		return m, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	h, err := histogram.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s is neither an MLQ model nor a histogram: %w", path, err)
	}
	return h, nil
}

// loadCatalog reads a catalog file crash-safely (salvaging a damaged primary
// and merging its .bak), returning an empty catalog for a missing file so
// `put` can bootstrap one. Degraded loads succeed with a warning: losing a
// cost model entry only means re-learning one UDF.
func loadCatalog(path string) (*catalog.Catalog, error) {
	c, rep, err := catalog.LoadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return catalog.New(), nil
	}
	if err != nil {
		return nil, err
	}
	if rep.Degraded() {
		fmt.Fprintf(os.Stderr, "warning: catalog %s loaded degraded (source %s)\n", path, rep.Source)
		for _, name := range rep.Restored {
			fmt.Fprintf(os.Stderr, "warning:   entry %s restored from backup\n", name)
		}
		for _, d := range rep.Dropped {
			fmt.Fprintf(os.Stderr, "warning:   dropped: %s\n", d)
		}
	}
	return c, nil
}

func saveCatalog(path string, c *catalog.Catalog) error {
	return catalog.SaveFile(path, c)
}

func cmdCatalog(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("catalog requires a subcommand: put, list, rm")
	}
	switch args[0] {
	case "put":
		return cmdCatalogPut(args[1:])
	case "list":
		return cmdCatalogList(args[1:])
	case "rm":
		return cmdCatalogRm(args[1:])
	default:
		return fmt.Errorf("unknown catalog subcommand %q (want put, list, rm)", args[0])
	}
}

func cmdCatalogPut(args []string) error {
	fs := flag.NewFlagSet("catalog put", flag.ExitOnError)
	catPath := fs.String("catalog", "", "catalog file (created if missing)")
	name := fs.String("name", "", "UDF name")
	cpuPath := fs.String("cpu", "", "CPU cost model file")
	ioPath := fs.String("io", "", "IO cost model file (optional)")
	fs.Parse(args)
	if *catPath == "" || *name == "" || *cpuPath == "" {
		return fmt.Errorf("catalog put requires -catalog, -name and -cpu")
	}
	c, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	cpu, err := loadAnyModel(*cpuPath)
	if err != nil {
		return err
	}
	var ioModel core.Model
	if *ioPath != "" {
		if ioModel, err = loadAnyModel(*ioPath); err != nil {
			return err
		}
	}
	if err := c.Put(*name, cpu, ioModel); err != nil {
		return err
	}
	if err := saveCatalog(*catPath, c); err != nil {
		return err
	}
	fmt.Printf("catalog now holds %d UDF(s)\n", c.Len())
	return nil
}

func cmdCatalogList(args []string) error {
	fs := flag.NewFlagSet("catalog list", flag.ExitOnError)
	catPath := fs.String("catalog", "", "catalog file")
	fs.Parse(args)
	if *catPath == "" {
		return fmt.Errorf("catalog list requires -catalog")
	}
	c, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	for _, name := range c.Names() {
		e, _ := c.Get(name)
		cpu, io := "-", "-"
		if e.CPU != nil {
			cpu = e.CPU.Name()
			if m, ok := e.CPU.(*core.MLQ); ok {
				cpu = fmt.Sprintf("%s (%d nodes)", cpu, m.Tree().NodeCount())
			}
		}
		if e.IO != nil {
			io = e.IO.Name()
		}
		fmt.Printf("%-20s cpu=%-20s io=%s\n", name, cpu, io)
	}
	return nil
}

func cmdCatalogRm(args []string) error {
	fs := flag.NewFlagSet("catalog rm", flag.ExitOnError)
	catPath := fs.String("catalog", "", "catalog file")
	name := fs.String("name", "", "UDF name")
	fs.Parse(args)
	if *catPath == "" || *name == "" {
		return fmt.Errorf("catalog rm requires -catalog and -name")
	}
	c, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	if _, ok := c.Get(*name); !ok {
		return fmt.Errorf("catalog has no entry %q", *name)
	}
	c.Delete(*name)
	return saveCatalog(*catPath, c)
}
