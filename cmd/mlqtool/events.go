package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mlq/internal/events"
)

// cmdBlackbox decodes a flight-recorder dump: the meta frame, every intact
// event, and the count of CRC-damaged frames. Damage is reported, not fatal —
// a black box recovered from a crashed process is expected to have a torn
// tail — but it does make the command exit nonzero so scripts notice.
func cmdBlackbox(args []string) error {
	fs := flag.NewFlagSet("blackbox", flag.ExitOnError)
	dumpPath := fs.String("dump", "", "flight-recorder dump file (.mlqbb)")
	fs.Parse(args)
	path := *dumpPath
	if path == "" && fs.NArg() == 1 {
		path = fs.Arg(0)
	}
	if path == "" {
		return fmt.Errorf("blackbox requires -dump FILE (or a single file argument)")
	}
	meta, evts, crcErrs, err := events.ReadDumpFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("dump:    %s\n", path)
	fmt.Printf("seq:     %d\n", meta.Seq)
	fmt.Printf("reason:  %s\n", meta.Reason)
	fmt.Printf("events:  %d\n", len(evts))
	fmt.Printf("damaged: %d frame(s)\n", crcErrs)
	if len(evts) > 0 {
		fmt.Println()
		events.WriteEvents(os.Stdout, evts)
	}
	if crcErrs > 0 {
		return fmt.Errorf("%d damaged frame(s) in %s", crcErrs, path)
	}
	return nil
}

// cmdTrace reconstructs one observation's end-to-end journey from a dump:
// observe -> batch drain -> journal append -> transport send/receive ->
// follower apply -> epoch publish, with per-hop lag. Without -id it lists
// the causal IDs present in the dump so the caller can pick one.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	dumpPath := fs.String("dump", "", "flight-recorder dump file (.mlqbb)")
	idHex := fs.String("id", "", "causal ID to trace (hex); empty lists the IDs in the dump")
	fs.Parse(args)
	if *dumpPath == "" {
		return fmt.Errorf("trace requires -dump FILE")
	}
	if *idHex == "" && fs.NArg() == 1 {
		*idHex = fs.Arg(0)
	}
	meta, evts, crcErrs, err := events.ReadDumpFile(*dumpPath)
	if err != nil {
		return err
	}
	if crcErrs > 0 {
		fmt.Fprintf(os.Stderr, "mlqtool: warning: %d damaged frame(s) in %s; tracing the intact events\n", crcErrs, *dumpPath)
	}
	if *idHex == "" {
		causes := events.Causes(evts)
		fmt.Printf("%d traced observation(s) in %s (reason: %s)\n", len(causes), *dumpPath, meta.Reason)
		for _, c := range causes {
			tr := events.BuildTrace(evts, c)
			fmt.Printf("  %016x  %d hop(s)\n", c, len(tr.Hops))
		}
		if len(causes) > 0 {
			fmt.Println("\nrun `mlqtool trace -dump FILE -id ID` to reconstruct one journey")
		}
		return nil
	}
	cause, err := strconv.ParseUint(strings.TrimPrefix(*idHex, "0x"), 16, 64)
	if err != nil {
		return fmt.Errorf("-id %q: %w", *idHex, err)
	}
	tr := events.BuildTrace(evts, cause)
	events.WriteTrace(os.Stdout, tr)
	if len(tr.Hops) == 0 {
		return fmt.Errorf("causal ID %016x has no events in %s", cause, *dumpPath)
	}
	return nil
}
