// Command mlqtool trains, inspects, and queries MLQ cost models from the
// command line. Models are stored in the compact binary format of
// internal/quadtree, so a model trained here can be loaded by any program
// using the library.
//
// Usage:
//
//	mlqtool train    -model m.mlq -data obs.csv -lo 0,0 -hi 1000,1000 [-lazy] [-mem 1843]
//	mlqtool predict  -model m.mlq -data queries.csv [-beta 1]
//	mlqtool stats    -model m.mlq
//	mlqtool dump     -model m.mlq
//	mlqtool blackbox -dump crash.mlqbb
//	mlqtool trace    -dump crash.mlqbb [-id HEX]
//
// blackbox and trace decode flight-recorder dumps (see internal/events):
// blackbox prints the raw event history around a fault, trace reconstructs
// one observation's causal journey through the feedback loop with per-hop
// lag.
//
// CSV rows are "x1,...,xd,cost" for train and "x1,...,xd" for predict;
// lines starting with '#' are skipped.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "train-sh":
		err = cmdTrainSH(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "catalog":
		err = cmdCatalog(os.Args[2:])
	case "blackbox":
		err = cmdBlackbox(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlqtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mlqtool <train|train-sh|predict|stats|dump|catalog|blackbox|trace> [flags]
  train    -model FILE -data CSV -lo a,b,... -hi a,b,... [-lazy] [-mem N] [-depth N] [-alpha F] [-beta N] [-gamma F]
  train-sh -model FILE -data CSV -lo a,b,... -hi a,b,... [-height] [-mem N]
  predict  -model FILE -data CSV [-beta N]
  stats    -model FILE
  dump     -model FILE
  catalog  put -catalog FILE -name UDF -cpu FILE [-io FILE]
  catalog  list -catalog FILE
  catalog  rm -catalog FILE -name UDF
  blackbox -dump FILE.mlqbb
  trace    -dump FILE.mlqbb [-id HEX]`)
}

// parsePoint parses a comma-separated coordinate list.
func parsePoint(s string) (geom.Point, error) {
	if s == "" {
		return nil, fmt.Errorf("empty coordinate list")
	}
	parts := strings.Split(s, ",")
	p := make(geom.Point, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", i, err)
		}
		p[i] = v
	}
	return p, nil
}

// readRows streams CSV records of the expected width, skipping comments.
func readRows(path string, width int, fn func(rec []float64) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.Comment = '#'
	r.FieldsPerRecord = width
	line := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		line++
		vals := make([]float64, len(rec))
		for i, c := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
			if err != nil {
				return fmt.Errorf("record %d field %d: %w", line, i, err)
			}
			vals[i] = v
		}
		if err := fn(vals); err != nil {
			return err
		}
	}
}

func loadModel(path string) (*core.MLQ, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadMLQ(f)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	modelPath := fs.String("model", "", "output model file")
	dataPath := fs.String("data", "", "training CSV: x1,...,xd,cost")
	loStr := fs.String("lo", "", "lower bounds, comma separated")
	hiStr := fs.String("hi", "", "upper bounds, comma separated")
	lazy := fs.Bool("lazy", false, "use lazy insertion (MLQ-L) instead of eager (MLQ-E)")
	mem := fs.Int("mem", 1843, "memory limit in bytes")
	depth := fs.Int("depth", 6, "maximum tree depth (lambda)")
	alpha := fs.Float64("alpha", 0.05, "lazy threshold scale")
	beta := fs.Int("beta", 1, "default prediction beta")
	gamma := fs.Float64("gamma", 0.001, "compression fraction")
	fs.Parse(args)
	if *modelPath == "" || *dataPath == "" || *loStr == "" || *hiStr == "" {
		return fmt.Errorf("train requires -model, -data, -lo and -hi")
	}
	lo, err := parsePoint(*loStr)
	if err != nil {
		return fmt.Errorf("-lo: %w", err)
	}
	hi, err := parsePoint(*hiStr)
	if err != nil {
		return fmt.Errorf("-hi: %w", err)
	}
	region, err := geom.NewRect(lo, hi)
	if err != nil {
		return err
	}
	strat := quadtree.Eager
	if *lazy {
		strat = quadtree.Lazy
	}
	model, err := core.NewMLQ(quadtree.Config{
		Region: region, Strategy: strat, MaxDepth: *depth,
		Alpha: *alpha, Beta: *beta, Gamma: *gamma, MemoryLimit: *mem,
	})
	if err != nil {
		return err
	}
	n := 0
	err = readRows(*dataPath, region.Dims()+1, func(rec []float64) error {
		n++
		return model.Observe(geom.Point(rec[:len(rec)-1]), rec[len(rec)-1])
	})
	if err != nil {
		return err
	}
	out, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if _, err := model.WriteTo(out); err != nil {
		return err
	}
	st := model.Tree().Stats()
	fmt.Printf("trained %s on %d observations: %d nodes, %d B, %d compressions\n",
		model.Name(), n, st.Nodes, st.MemoryBytes, st.Compressions)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "", "model file")
	dataPath := fs.String("data", "", "query CSV: x1,...,xd")
	beta := fs.Int("beta", 0, "override prediction beta (0 = model default)")
	fs.Parse(args)
	if *modelPath == "" || *dataPath == "" {
		return fmt.Errorf("predict requires -model and -data")
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	dims := model.Tree().Config().Region.Dims()
	return readRows(*dataPath, dims, func(rec []float64) error {
		var v float64
		var ok bool
		if *beta > 0 {
			v, ok = model.PredictBeta(geom.Point(rec), *beta)
		} else {
			v, ok = model.Predict(geom.Point(rec))
		}
		if !ok {
			fmt.Println("NA")
			return nil
		}
		fmt.Printf("%g\n", v)
		return nil
	})
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	modelPath := fs.String("model", "", "model file")
	fs.Parse(args)
	if *modelPath == "" {
		return fmt.Errorf("stats requires -model")
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	cfg := model.Tree().Config()
	st := model.Tree().Stats()
	fmt.Printf("method:        %s\n", model.Name())
	fmt.Printf("region:        %v\n", cfg.Region)
	fmt.Printf("lambda:        %d\n", cfg.MaxDepth)
	fmt.Printf("alpha:         %g\n", cfg.Alpha)
	fmt.Printf("beta:          %d\n", cfg.Beta)
	fmt.Printf("gamma:         %g\n", cfg.Gamma)
	fmt.Printf("memory:        %d / %d bytes\n", st.MemoryBytes, cfg.MemoryLimit)
	fmt.Printf("nodes:         %d (%d leaves, depth %d)\n", st.Nodes, st.Leaves, st.MaxDepth)
	fmt.Printf("inserts:       %d\n", st.Inserts)
	fmt.Printf("compressions:  %d (%d nodes removed)\n", st.Compressions, st.RemovedNodes)
	fmt.Printf("TSSENC:        %g\n", st.TSSENC)
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	modelPath := fs.String("model", "", "model file")
	fs.Parse(args)
	if *modelPath == "" {
		return fmt.Errorf("dump requires -model")
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	model.Tree().Dump(os.Stdout)
	return nil
}
