package main

import (
	"testing"

	"mlq/internal/engine"
)

func TestRunDefaultQuery(t *testing.T) {
	if err := run(defaultQuery, 300, 1, true, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadQuery(t *testing.T) {
	if err := run("SELECT * FROM nope", 50, 1, false, nil); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run("not sql at all", 50, 1, false, nil); err == nil {
		t.Error("garbage accepted")
	}
}

func TestAllRegisteredUDFsExecute(t *testing.T) {
	db, err := buildDB(120, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM requests WHERE win_count(x, y, area) >= 0",
		"SELECT * FROM requests WHERE range_count(x, y, r) >= 0",
		"SELECT * FROM requests WHERE knn_dist(x, y, k) >= 0",
		"SELECT * FROM requests WHERE doc_count(rank, n) >= 0",
		"SELECT * FROM requests WHERE thresh_count(rank, m) >= 0",
		"SELECT * FROM requests WHERE prox_count(rank, w) >= 0",
	}
	for _, q := range queries {
		res, err := db.Exec(q, engine.OrderByRank)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res.Rows) != 120 {
			t.Errorf("%s: selected %d of 120 with an always-true predicate", q, len(res.Rows))
		}
		if res.Stats.TotalCost <= 0 {
			t.Errorf("%s: no UDF cost recorded", q)
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := sqrtPos(0); got != 1 {
		t.Errorf("sqrtPos(0) = %g, want 1 (clamped)", got)
	}
	if got := sqrtPos(10000); got != 100 {
		t.Errorf("sqrtPos(10000) = %g", got)
	}
	if maxF(2, 3) != 3 || maxF(4, 1) != 4 {
		t.Error("maxF broken")
	}
}
