// Command mlqsql runs SQL queries with expensive UDF predicates against the
// repository's text and spatial engines, planning them with self-tuning MLQ
// cost models. It is the paper's Figure 1 wired to a SQL front end.
//
// Usage:
//
//	mlqsql [-q "SELECT ..."] [-rows N] [-seed N] [-compare]
//
// The schema is a table `requests` of simulated query parameters with the
// six UDFs registered as SQL functions:
//
//	win_count(x, y, area)       spatial window search, objects found
//	range_count(x, y, r)        spatial range search, objects found
//	knn_dist(x, y, k)           distance to the k-th nearest object
//	doc_count(rank, n)          keyword AND search, documents found
//	thresh_count(rank, m)       threshold keyword search, documents found
//	prox_count(rank, w)         proximity keyword search, documents found
//
// Columns of requests: x, y, area, r, k, rank, n, m, w.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
	"mlq/internal/minisql"
	"mlq/internal/quadtree"
	"mlq/internal/spatialdb"
	"mlq/internal/telemetry"
	"mlq/internal/textdb"
)

const defaultQuery = `SELECT * FROM requests WHERE win_count(x, y, area) >= 5 AND prox_count(rank, w) > 0`

func main() {
	query := flag.String("q", defaultQuery, "SQL query to run")
	rows := flag.Int("rows", 2000, "rows in the requests table")
	seed := flag.Int64("seed", 1, "random seed")
	compare := flag.Bool("compare", true, "also run the naive as-written plan and report the speedup")
	telemetryAddr := flag.String("telemetry", "", "serve live metrics on this address while the query runs (e.g. localhost:9090; empty disables)")
	flag.Parse()

	var reg *telemetry.Registry
	if *telemetryAddr != "" {
		reg = telemetry.New()
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlqsql:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving %s\n", srv.URL())
		defer srv.Close()
	}

	if err := run(*query, *rows, *seed, *compare, reg); err != nil {
		fmt.Fprintln(os.Stderr, "mlqsql:", err)
		os.Exit(1)
	}
}

// buildDB assembles the substrates, the requests table, and the UDF
// registrations. Fresh models every call so plans can be compared fairly. A
// non-nil registry attaches each UDF's cost and selectivity model trees and
// the two page caches to telemetry.
func buildDB(rows int, seed int64, reg *telemetry.Registry) (*minisql.DB, error) {
	tdb, err := textdb.Generate(textdb.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	sdb, err := spatialdb.Generate(spatialdb.Config{Seed: seed + 1})
	if err != nil {
		return nil, err
	}

	db := minisql.NewDB()
	rng := rand.New(rand.NewSource(seed + 2))
	table := &engine.Table{Name: "requests"}
	vocab := float64(tdb.VocabSize())
	for i := 0; i < rows; i++ {
		table.Rows = append(table.Rows, engine.Row{
			rng.Float64() * 1000,    // x
			rng.Float64() * 1000,    // y
			1 + rng.Float64()*10000, // area
			1 + rng.Float64()*100,   // r
			1 + rng.Float64()*40,    // k
			rng.Float64() * vocab,   // rank
			1 + rng.Float64()*5,     // n
			1 + rng.Float64()*4,     // m
			1 + rng.Float64()*50,    // w
		})
	}
	if err := db.AddTable(table, "x", "y", "area", "r", "k", "rank", "n", "m", "w"); err != nil {
		return nil, err
	}

	model := func(lo, hi geom.Point) (core.Model, error) {
		region, err := geom.NewRect(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("mlqsql: model region: %w", err)
		}
		return core.NewMLQ(quadtree.Config{
			Region:      region,
			Strategy:    quadtree.Lazy,
			MemoryLimit: 1843,
		})
	}
	charge := func(cpu, io float64) float64 { return cpu + 10*io }

	winModel, err := model(geom.Point{0, 0, 0}, geom.Point{1000, 1000, 10001})
	if err != nil {
		return nil, err
	}
	rangeModel, err := model(geom.Point{0, 0, 0}, geom.Point{1000, 1000, 101})
	if err != nil {
		return nil, err
	}
	knnModel, err := model(geom.Point{0, 0, 1}, geom.Point{1000, 1000, 41})
	if err != nil {
		return nil, err
	}
	docModel, err := model(geom.Point{0, 1}, geom.Point{vocab, 6})
	if err != nil {
		return nil, err
	}
	threshModel, err := model(geom.Point{0, 1}, geom.Point{vocab, 5})
	if err != nil {
		return nil, err
	}
	proxModel, err := model(geom.Point{0, 1}, geom.Point{vocab, 51})
	if err != nil {
		return nil, err
	}

	funcs := []*minisql.Func{
		{
			Name: "win_count", Arity: 3,
			Eval: func(a []float64) (float64, float64) {
				side := sqrtPos(a[2])
				objs, st, err := sdb.Window(a[0]-side/2, a[1]-side/2, side, side)
				if err != nil {
					return evalFailed("win_count", err)
				}
				return float64(len(objs)), charge(st.CPU, st.IO)
			},
			Model: winModel,
		},
		{
			Name: "range_count", Arity: 3,
			Eval: func(a []float64) (float64, float64) {
				objs, st, err := sdb.Range(a[0], a[1], maxF(a[2], 0))
				if err != nil {
					return evalFailed("range_count", err)
				}
				return float64(len(objs)), charge(st.CPU, st.IO)
			},
			Model: rangeModel,
		},
		{
			Name: "knn_dist", Arity: 3,
			Eval: func(a []float64) (float64, float64) {
				k := int(a[2])
				if k < 1 {
					k = 1
				}
				objs, st, err := sdb.KNN(a[0], a[1], k)
				if err != nil {
					return evalFailed("knn_dist", err)
				}
				d := 0.0
				if len(objs) > 0 {
					last := objs[len(objs)-1]
					d = geom.Dist(geom.Point{a[0], a[1]}, geom.Point{last.CenterX(), last.CenterY()})
				}
				return d, charge(st.CPU, st.IO)
			},
			Model: knnModel,
		},
		{
			Name: "doc_count", Arity: 2,
			Eval: func(a []float64) (float64, float64) {
				docs, st, err := tdb.SearchSimple(wordsFrom(tdb, a[0], int(a[1])))
				if err != nil {
					return evalFailed("doc_count", err)
				}
				return float64(len(docs)), charge(st.CPU, st.IO)
			},
			Model: docModel,
		},
		{
			Name: "thresh_count", Arity: 2,
			Eval: func(a []float64) (float64, float64) {
				docs, st, err := tdb.SearchThreshold(wordsFrom(tdb, a[0], 5), int(a[1]))
				if err != nil {
					return evalFailed("thresh_count", err)
				}
				return float64(len(docs)), charge(st.CPU, st.IO)
			},
			Model: threshModel,
		},
		{
			Name: "prox_count", Arity: 2,
			Eval: func(a []float64) (float64, float64) {
				docs, st, err := tdb.SearchProximity(wordsFrom(tdb, a[0], 2), int(a[1]))
				if err != nil {
					return evalFailed("prox_count", err)
				}
				return float64(len(docs)), charge(st.CPU, st.IO)
			},
			Model: proxModel,
		},
	}
	for _, f := range funcs {
		sel, err := model(f.Model.(*core.MLQ).Tree().Config().Region.Lo,
			f.Model.(*core.MLQ).Tree().Config().Region.Hi)
		if err != nil {
			return nil, err
		}
		f.SelModel = sel
		if reg != nil {
			f.Model.(*core.MLQ).Tree().Instrument(reg, nil,
				telemetry.L("udf", f.Name), telemetry.L("model", "cost"))
			sel.(*core.MLQ).Tree().Instrument(reg, nil,
				telemetry.L("udf", f.Name), telemetry.L("model", "sel"))
		}
		if err := db.AddFunc(f); err != nil {
			return nil, err
		}
	}
	if reg != nil {
		tdb.Cache().Instrument(reg, telemetry.L("db", "text"))
		sdb.Cache().Instrument(reg, telemetry.L("db", "spatial"))
	}
	return db, nil
}

// wordsFrom mirrors the textdb UDF adapters' keyword materialization.
func wordsFrom(tdb *textdb.DB, rank float64, n int) []int {
	if n < 1 {
		n = 1
	}
	stride := tdb.VocabSize() / 64
	if stride < 1 {
		stride = 1
	}
	words := make([]int, n)
	for i := range words {
		w := int(rank) + i*stride
		if w >= tdb.VocabSize() {
			w = tdb.VocabSize() - 1
		}
		if w < 0 {
			w = 0
		}
		words[i] = w
	}
	return words
}

// evalFailed surfaces a UDF execution failure on stderr and reports a zero
// result at zero cost; the row simply does not pass the predicate. These
// closures have no error channel, and the old panic(err) here crashed the
// whole CLI with a stack trace for a single failed page read.
func evalFailed(name string, err error) (float64, float64) {
	fmt.Fprintf(os.Stderr, "mlqsql: %s: execution failed: %v\n", name, err)
	return 0, 0
}

func sqrtPos(v float64) float64 {
	if v < 1 {
		v = 1
	}
	return math.Sqrt(v)
}

func maxF(a, b float64) float64 { return math.Max(a, b) }

func run(query string, rows int, seed int64, compare bool, reg *telemetry.Registry) error {
	fmt.Fprintln(os.Stderr, "building substrates...")
	db, err := buildDB(rows, seed, reg)
	if err != nil {
		return err
	}
	tuned, err := db.Exec(query, engine.OrderByRank)
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n", query)
	fmt.Printf("rows selected: %d of %d\n", len(tuned.Rows), rows)
	fmt.Printf("self-tuned plan cost: %.0f work units\n", tuned.Stats.TotalCost)
	fmt.Println("\nUDF evaluations (self-tuned plan):")
	for _, name := range tuned.Plan {
		fmt.Printf("  %-36s %d\n", name, tuned.Stats.Evaluations[name])
	}
	if !compare {
		return nil
	}
	// The naive comparison DB is deliberately uninstrumented: two sets of
	// fresh trees publishing into the same series would interleave.
	naiveDB, err := buildDB(rows, seed, nil)
	if err != nil {
		return err
	}
	naive, err := naiveDB.Exec(query, engine.OrderAsGiven)
	if err != nil {
		return err
	}
	if len(naive.Rows) != len(tuned.Rows) {
		return fmt.Errorf("plans disagree: naive %d rows, tuned %d", len(naive.Rows), len(tuned.Rows))
	}
	fmt.Printf("\nnaive as-written plan cost: %.0f work units\n", naive.Stats.TotalCost)
	fmt.Printf("speedup from self-tuned ordering: %.2fx\n", naive.Stats.TotalCost/tuned.Stats.TotalCost)
	return nil
}
