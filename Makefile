# Convenience targets for the MLQ reproduction.
GO ?= go

.PHONY: all build vet test race bench repro repro-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper at full workload sizes.
repro:
	$(GO) run ./cmd/mlqbench

repro-quick:
	$(GO) run ./cmd/mlqbench -quick

# 30 seconds of coverage-guided fuzzing per binary decoder.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/quadtree
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/histogram
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/catalog

clean:
	$(GO) clean ./...
