# Convenience targets for the MLQ reproduction.
GO ?= go

.PHONY: all build vet test race race-full bench bench-smoke bench-concurrency memwall repro repro-quick fuzz chaos chaos-latency chaos-repl chaos-net clean fmt lint lint-concurrency lint-sarif check

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Rewrite the tree into canonical formatting.
fmt:
	gofmt -w .

# Formatting, go vet, and the project-specific analyzers (see DESIGN.md
# "Static analysis & enforced invariants"). Fails if gofmt would change
# anything or mlqlint reports a finding.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/mlqlint ./...

# Only the four concurrency-invariant analyzers (lock ordering, goroutine
# lifecycles, atomic discipline, channel ownership): the fast pre-commit
# check after touching core/replica/journal/telemetry/buffercache.
lint-concurrency:
	$(GO) run ./cmd/mlqlint -only lockorder,goroutinelife,atomicdiscipline,chanowner ./...

# SARIF 2.1.0 findings log for CI inline annotations.
lint-sarif:
	$(GO) run ./cmd/mlqlint -sarif ./... > mlqlint.sarif || true

# The full local gate: what CI enforces.
check: lint test race

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The nightly full-repo race sweep: every package under the race detector
# with a hard timeout, not just the replica/telemetry subset PR CI runs.
race-full:
	$(GO) test -race -timeout 10m ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rotted benchmark code
# without paying for real measurements (CI runs this).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Concurrency scaling of the epoch/snapshot publisher versus the mutex
# baseline: the mlqbench throughput/staleness table plus the parallel
# predict and sorted-span child-lookup micro-benchmarks. All wall-clock
# numbers — machine-dependent by design, so not part of repro.
bench-concurrency:
	$(GO) run ./cmd/mlqbench -exp concurrency
	$(GO) test -run=NONE -bench='PredictParallel|ChildLookup' -benchmem . ./internal/quadtree

# The global memory wall: the migrating-hot-set experiment (the arbiter
# must beat every static model/cache split of one budget — MemWall errors
# otherwise), race coverage of the arbiter and the resizable cache, and
# the predict-path pin proving live Resize costs the hot path nothing.
memwall:
	$(GO) run ./cmd/mlqbench -exp memwall
	$(GO) test -race ./internal/budget/ ./internal/buffercache/
	$(GO) test -run=NONE -bench 'BenchmarkPredict$$|BenchmarkPredictResize$$' -benchtime 300ms .

# Regenerate every figure of the paper at full workload sizes.
repro:
	$(GO) run ./cmd/mlqbench

repro-quick:
	$(GO) run ./cmd/mlqbench -quick

# 30 seconds of coverage-guided fuzzing per binary decoder. The pattern is
# anchored: the catalog package also has FuzzRecover, and go test rejects a
# -fuzz pattern matching more than one target.
fuzz:
	$(GO) test -fuzz '^FuzzRead$$' -fuzztime 30s ./internal/quadtree
	$(GO) test -fuzz '^FuzzRead$$' -fuzztime 30s ./internal/histogram
	$(GO) test -fuzz '^FuzzRead$$' -fuzztime 30s ./internal/catalog
	$(GO) test -fuzz '^FuzzRecover$$' -fuzztime 30s ./internal/catalog
	$(GO) test -fuzz '^FuzzReplay$$' -fuzztime 30s ./internal/journal
	$(GO) test -fuzz '^FuzzTailFollow$$' -fuzztime 30s ./internal/journal
	$(GO) test -fuzz '^FuzzWireDecode$$' -fuzztime 30s ./internal/replica/nettransport

# Fault-injection sweep: the hardened feedback loop under corrupted
# observations, UDF panics, page-read failures and torn catalog writes.
chaos:
	$(GO) run ./cmd/mlqbench -exp chaos -quick

# Slow-disk sweep: retry/backoff latency charged into IO cost observations,
# Publisher journaling with replay-equivalence checks, bounded NAE
# inflation. Virtual-time latency — the sweep is fast and deterministic.
chaos-latency:
	$(GO) run ./cmd/mlqbench -exp chaoslatency -quick
	$(GO) test -fuzz '^FuzzReplay$$' -fuzztime 10s ./internal/journal

# Replication chaos: kill primaries mid-stream, partition and heal followers,
# then assert zero acked loss beyond one batch and byte-identical convergence
# across the whole replica fleet. Deterministic — seeded faults, no clocks.
chaos-repl:
	$(GO) run ./cmd/mlqbench -exp chaosrepl -quick
	$(GO) test -race ./internal/replica/

# Replication chaos over real loopback sockets: reconnect/backoff, heartbeat
# liveness, socket-level fault injection (RST, truncation, delay) and the
# resumable bootstrap killed mid-transfer. Same convergence assertions as
# chaos-repl, carried by the TCP transport. The fuzz pass hammers the wire
# decoder the accept loops trust.
chaos-net:
	$(GO) run ./cmd/mlqbench -exp chaosnet -quick
	$(GO) test -race ./internal/replica/...
	$(GO) test -fuzz '^FuzzWireDecode$$' -fuzztime 10s ./internal/replica/nettransport

clean:
	$(GO) clean ./...
