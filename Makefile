# Convenience targets for the MLQ reproduction.
GO ?= go

.PHONY: all build vet test race bench repro repro-quick fuzz chaos clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper at full workload sizes.
repro:
	$(GO) run ./cmd/mlqbench

repro-quick:
	$(GO) run ./cmd/mlqbench -quick

# 30 seconds of coverage-guided fuzzing per binary decoder. The pattern is
# anchored: the catalog package also has FuzzRecover, and go test rejects a
# -fuzz pattern matching more than one target.
fuzz:
	$(GO) test -fuzz '^FuzzRead$$' -fuzztime 30s ./internal/quadtree
	$(GO) test -fuzz '^FuzzRead$$' -fuzztime 30s ./internal/histogram
	$(GO) test -fuzz '^FuzzRead$$' -fuzztime 30s ./internal/catalog
	$(GO) test -fuzz '^FuzzRecover$$' -fuzztime 30s ./internal/catalog

# Fault-injection sweep: the hardened feedback loop under corrupted
# observations, UDF panics, page-read failures and torn catalog writes.
chaos:
	$(GO) run ./cmd/mlqbench -exp chaos -quick

clean:
	$(GO) clean ./...
