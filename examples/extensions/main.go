// Extensions: the features the paper defers to future work (§3), built on
// the same MLQ machinery — nominal (categorical) UDF arguments, ordinal
// arguments with unknown ranges, and a persistent model catalog.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mlq/internal/catalog"
	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// --- 1. Nominal arguments -------------------------------------------
	// A UDF decode(format, size): cost depends on size ordinally but on
	// format categorically — "png" costs 20x "jpeg" at the same size.
	fmt.Println("== categorical arguments ==")
	factory := func() (core.Model, error) {
		return core.NewMLQ(quadtree.Config{
			Region:      mustRect(geom.Point{0}, geom.Point{100}),
			MemoryLimit: 1843,
		})
	}
	cat, err := core.NewCategorical(factory, 8)
	if err != nil {
		log.Fatal(err)
	}
	costOf := map[string]float64{"jpeg": 1, "png": 20, "tiff": 7}
	for i := 0; i < 6000; i++ {
		size := rng.Float64() * 100
		for format, scale := range costOf {
			if err := cat.Observe(format, geom.Point{size}, scale*size); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, format := range cat.Categories() {
		pred, _ := cat.Predict(format, geom.Point{50})
		fmt.Printf("decode(%-4s, size=50): predicted %7.1f  (true %7.1f)\n",
			format, pred, costOf[format]*50)
	}

	// --- 2. Unknown argument ranges --------------------------------------
	// The model starts with a tiny guessed region and grows as larger
	// arguments arrive, keeping what it learned via a reservoir replay.
	fmt.Println("\n== unknown ranges (auto-expanding region) ==")
	ar, err := core.NewAutoRange(quadtree.Config{
		Region:      mustRect(geom.Point{0}, geom.Point{10}),
		MemoryLimit: 1843,
	}, 512, 2)
	if err != nil {
		log.Fatal(err)
	}
	cost := func(x float64) float64 { return 2 * x }
	for i := 0; i < 5000; i++ {
		// Arguments grow over time far beyond the initial [0, 10) guess.
		x := rng.Float64() * float64(10*(1+i/500))
		if err := ar.Observe(geom.Point{x}, cost(x)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("region grew to %v after %d expansions\n", ar.Region(), ar.Rebuilds())
	for _, x := range []float64{5, 50, 90} {
		pred, _ := ar.Predict(geom.Point{x})
		fmt.Printf("cost(%4.0f): predicted %6.1f (true %6.1f)\n", x, pred, cost(x))
	}

	// --- 3. Model catalog -------------------------------------------------
	// Persist every UDF's CPU+IO models in one stream, as a DBMS catalog
	// would across restarts.
	fmt.Println("\n== model catalog ==")
	cpu, _ := factory()
	io, _ := factory()
	for i := 0; i < 1000; i++ {
		x := rng.Float64() * 100
		if err := cpu.Observe(geom.Point{x}, x*x/10); err != nil {
			log.Fatal(err)
		}
		if err := io.Observe(geom.Point{x}, x/5); err != nil {
			log.Fatal(err)
		}
	}
	c := catalog.New()
	if err := c.Put("SimilarityDistance", cpu, io); err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := catalog.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	entry, _ := reloaded.Get("SimilarityDistance")
	p := geom.Point{60}
	pc, _ := entry.CPU.Predict(p)
	pi, _ := entry.IO.Predict(p)
	fmt.Printf("catalog persisted %d UDF(s); after reload: cpu(60)=%.1f io(60)=%.1f\n",
		reloaded.Len(), pc, pi)
}

// mustRect builds a model region from the example's constant bounds,
// aborting the demo on the (impossible) malformed case.
func mustRect(lo, hi geom.Point) geom.Rect {
	r, err := geom.NewRect(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
