// Adaptive: the paper's core argument (§1) in one run. A static histogram
// is trained a-priori on the current workload; then the workload shifts to
// a different region of the model space. The static model's error explodes
// while the self-tuning MLQ model adapts within a few hundred queries.
package main

import (
	"fmt"
	"log"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/harness"
	"mlq/internal/metrics"
	"mlq/internal/synthetic"
	"mlq/internal/workload"
)

func main() {
	surface, err := synthetic.Generate(synthetic.Config{Seed: 3, NumPeaks: 100})
	if err != nil {
		log.Fatal(err)
	}
	region := surface.Region()

	// Phase 1 and phase 2 workloads: Gaussian clusters in different
	// places (different centroid seeds = the shift).
	const n = 4000
	phase1, err := dist.NewSourceSeeded(dist.KindGaussianRandom, region, n, 10, 11)
	if err != nil {
		log.Fatal(err)
	}
	phase2, err := dist.NewSourceSeeded(dist.KindGaussianRandom, region, n, 20, 21)
	if err != nil {
		log.Fatal(err)
	}
	shifting, err := workload.NewConcat([]dist.PointSource{phase1, phase2}, []int{n / 2, n / 2})
	if err != nil {
		log.Fatal(err)
	}

	// SH-H is trained a-priori on phase 1 only — all it can ever know.
	trainSrc, err := dist.NewSourceSeeded(dist.KindGaussianRandom, region, n, 10, 12)
	if err != nil {
		log.Fatal(err)
	}
	training := workload.CollectSamples(trainSrc, surface, n/2)
	sh, err := harness.NewModel(harness.SHH, region, harness.Options{}, training)
	if err != nil {
		log.Fatal(err)
	}
	mlq, err := harness.NewModel(harness.MLQL, region, harness.Options{}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Run the shifting workload through both models, tracking windowed
	// error curves.
	curves := map[string]*metrics.Curve{}
	models := map[string]core.Model{"SH-H (static)": sh, "MLQ-L (self-tuning)": mlq}
	for name := range models {
		c, err := metrics.NewCurve(n / 8)
		if err != nil {
			log.Fatal(err)
		}
		curves[name] = c
	}
	for i := 0; i < n; i++ {
		p := shifting.Next()
		actual := surface.Cost(p)
		for name, m := range models {
			pred, _ := m.Predict(p)
			curves[name].Add(pred, actual)
			if err := m.Observe(p, actual); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("workload shifts to new clusters after query %d\n\n", n/2)
	fmt.Printf("%-8s  %-12s  %-12s\n", "queries", "SH-H (NAE)", "MLQ-L (NAE)")
	shPts := curves["SH-H (static)"].Points()
	mlqPts := curves["MLQ-L (self-tuning)"].Points()
	for i := range shPts {
		marker := ""
		if shPts[i].N > int64(n/2) && shPts[i].N <= int64(n/2+n/8) {
			marker = "  <- shift"
		}
		fmt.Printf("%-8d  %-12.4f  %-12.4f%s\n", shPts[i].N, shPts[i].NAE, mlqPts[i].NAE, marker)
	}

	last := len(shPts) - 1
	if mlqPts[last].NAE < shPts[last].NAE {
		fmt.Printf("\nafter the shift, self-tuning MLQ-L ends at %.4f NAE vs static SH-H at %.4f\n",
			mlqPts[last].NAE, shPts[last].NAE)
	}
}
