// Optimizer: UDF predicate ordering with self-tuning cost models — the
// query-optimization decision that motivates UDF cost modeling (§1).
// Three UDF predicates with very different costs and selectivities filter a
// table; the engine re-plans their order per row using MLQ predictions and
// observed selectivities, and the example compares the resulting total cost
// against the naive written order.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	table := &engine.Table{Name: "images"}
	for i := 0; i < 4000; i++ {
		table.Rows = append(table.Rows, engine.Row{
			rng.Float64() * 100, // col 0: image size
			rng.Float64() * 100, // col 1: snow coverage input
			rng.Float64() * 100, // col 2: similarity input
		})
	}

	newModel := func() core.Model {
		m, err := core.NewMLQ(quadtree.Config{
			Region:      mustRect(geom.Point{0}, geom.Point{100}),
			Strategy:    quadtree.Lazy,
			MemoryLimit: 1843,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// Three UDFs mimicking the paper's intro examples: cost grows with
	// the image size column at very different rates.
	build := func() []*engine.Predicate {
		return []*engine.Predicate{
			{
				// SimilarityDistance: quadratic in image size,
				// unselective. Written first, should run last.
				Name: "SimilarityDistance",
				Exec: func(r engine.Row) (bool, float64) {
					return r[2] < 90, 5 + r[0]*r[0]/10
				},
				Point: func(r engine.Row) geom.Point { return geom.Point{r[0]} },
				Model: newModel(),
			},
			{
				// SnowCoverage: linear cost, moderately selective.
				Name: "SnowCoverage",
				Exec: func(r engine.Row) (bool, float64) {
					return r[1] < 40, 5 + r[0]
				},
				Point: func(r engine.Row) geom.Point { return geom.Point{r[0]} },
				Model: newModel(),
			},
			{
				// Contained: nearly free and highly selective.
				// Written last, should run first.
				Name: "Contained",
				Exec: func(r engine.Row) (bool, float64) {
					return math.Mod(r[0]+r[1], 10) < 2, 1
				},
				Point: func(r engine.Row) geom.Point { return geom.Point{r[0]} },
				Model: newModel(),
			},
		}
	}

	naive, err := engine.ExecuteQuery(table, build(), engine.OrderAsGiven)
	if err != nil {
		log.Fatal(err)
	}
	tunedPreds := build()
	tuned, err := engine.ExecuteQuery(table, tunedPreds, engine.OrderByRank)
	if err != nil {
		log.Fatal(err)
	}
	if naive.Selected != tuned.Selected {
		log.Fatalf("plans disagree: %d vs %d rows", naive.Selected, tuned.Selected)
	}

	fmt.Printf("rows selected by both plans: %d of %d\n\n", naive.Selected, len(table.Rows))
	fmt.Printf("%-20s %12s %12s\n", "predicate", "naive evals", "tuned evals")
	for _, p := range tunedPreds {
		fmt.Printf("%-20s %12d %12d   (sel=%.2f)\n",
			p.Name, naive.Evaluations[p.Name], tuned.Evaluations[p.Name], p.Selectivity())
	}
	fmt.Printf("\nnaive plan cost: %12.0f\n", naive.TotalCost)
	fmt.Printf("tuned plan cost: %12.0f\n", tuned.TotalCost)
	fmt.Printf("speedup:         %12.2fx\n", naive.TotalCost/tuned.TotalCost)
}

// mustRect builds a model region from the example's constant bounds,
// aborting the demo on the (impossible) malformed case.
func mustRect(lo, hi geom.Point) geom.Rect {
	r, err := geom.NewRect(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
