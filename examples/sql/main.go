// SQL: the paper's introduction example as an actual query. A table of
// satellite images is filtered by two UDF predicates — the §1 scenario
//
//	SELECT ... FROM Map m
//	WHERE Contained(m.satelliteImg, ...) AND SnowCoverage(m.satelliteImg) < 20
//
// — executed through the minisql layer with self-tuning MLQ cost models, so
// the engine discovers on its own which predicate to run first.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mlq/internal/core"
	"mlq/internal/engine"
	"mlq/internal/geom"
	"mlq/internal/minisql"
	"mlq/internal/quadtree"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	table := &engine.Table{Name: "map"}
	for i := 0; i < 5000; i++ {
		table.Rows = append(table.Rows, engine.Row{
			rng.Float64() * 100, // img: image size in megapixels
			rng.Float64() * 90,  // lat
			rng.Float64() * 180, // lon
		})
	}

	newModel := func(lo, hi geom.Point) core.Model {
		m, err := core.NewMLQ(quadtree.Config{
			Region:      mustRect(lo, hi),
			Strategy:    quadtree.Lazy,
			MemoryLimit: 1843,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	build := func() *minisql.DB {
		db := minisql.NewDB()
		if err := db.AddTable(table, "img", "lat", "lon"); err != nil {
			log.Fatal(err)
		}
		// SnowCoverage: cost quadratic in image size (pixel scan).
		if err := db.AddFunc(&minisql.Func{
			Name:  "SnowCoverage",
			Arity: 1,
			Eval: func(args []float64) (float64, float64) {
				img := args[0]
				coverage := 50 + 50*math.Sin(img/7) // synthetic % estimate
				return coverage, 10 + img*img/20
			},
			Model:    newModel(geom.Point{0}, geom.Point{100}),
			SelModel: newModel(geom.Point{0}, geom.Point{100}),
		}); err != nil {
			log.Fatal(err)
		}
		// Contained: cheap bounding-box test against a fixed circle.
		if err := db.AddFunc(&minisql.Func{
			Name:  "Contained",
			Arity: 2,
			Eval: func(args []float64) (float64, float64) {
				lat, lon := args[0], args[1]
				d := math.Hypot(lat-45, lon-90)
				if d < 20 {
					return 1, 1
				}
				return 0, 1
			},
			Model: newModel(geom.Point{0, 0}, geom.Point{90, 180}),
		}); err != nil {
			log.Fatal(err)
		}
		return db
	}

	// The intro's query, written with the expensive predicate first.
	query := `SELECT * FROM map
	          WHERE SnowCoverage(img) < 20 AND Contained(lat, lon) = 1`

	naive, err := build().Exec(query, engine.OrderAsGiven)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := build().Exec(query, engine.OrderByRank)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n\n", query)
	fmt.Printf("rows selected (both plans):   %d\n", len(tuned.Rows))
	if len(naive.Rows) != len(tuned.Rows) {
		log.Fatalf("plans disagree: %d vs %d", len(naive.Rows), len(tuned.Rows))
	}
	fmt.Printf("cost, as-written order:       %.0f\n", naive.Stats.TotalCost)
	fmt.Printf("cost, self-tuned rank order:  %.0f\n", tuned.Stats.TotalCost)
	fmt.Printf("speedup:                      %.2fx\n\n", naive.Stats.TotalCost/tuned.Stats.TotalCost)
	fmt.Println("UDF evaluations under the self-tuned plan:")
	for name, n := range tuned.Stats.Evaluations {
		fmt.Printf("  %-30s %d\n", name, n)
	}
}

// mustRect builds a model region from the example's constant bounds,
// aborting the demo on the (impossible) malformed case.
func mustRect(lo, hi geom.Point) geom.Rect {
	r, err := geom.NewRect(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
