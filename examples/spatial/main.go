// Spatial: dual CPU + disk-IO cost modeling of a real spatial UDF, the way
// an ORDBMS keeps "two cost estimators for each UDF" (§1). A window-search
// UDF runs against the grid-indexed spatial database through an LRU buffer
// cache; its CPU cost is modeled with β=1 and its noisy IO cost with β=10,
// the paper's recommended settings (§5.1).
package main

import (
	"fmt"
	"log"
	"math"

	"mlq/internal/core"
	"mlq/internal/dist"
	"mlq/internal/metrics"
	"mlq/internal/quadtree"
	"mlq/internal/spatialdb"
)

func main() {
	db, err := spatialdb.Generate(spatialdb.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	win := db.UDFs()[1] // WIN: model variables (x, y, area)

	mk := func(beta int) core.Model {
		m, err := core.NewMLQ(quadtree.Config{
			Region:      win.Region(),
			Strategy:    quadtree.Eager,
			Beta:        beta,
			MemoryLimit: 1843,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	dual := core.NewDualEstimator(mk(1), mk(10), nil)

	src := dist.NewUniform(win.Region(), 6)
	var cpuNAE, ioNAE metrics.NAE
	const n = 3000
	for i := 0; i < n; i++ {
		p := src.Next()
		predCPU, predIO, _, _ := dual.Estimate(p...)
		cpu, io, err := win.Execute(p)
		if err != nil {
			log.Fatal(err)
		}
		cpuNAE.Add(predCPU, cpu)
		ioNAE.Add(predIO, io)
		if err := dual.Feedback(p, cpu, io); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("window-search UDF over %d objects, %d queries\n\n", db.NumObjects(), n)
	fmt.Printf("CPU cost model (beta=1):  NAE = %.4f\n", cpuNAE.Value())
	fmt.Printf("IO cost model (beta=10):  NAE = %.4f  (noisy: depends on cache state)\n\n", ioNAE.Value())

	// Show a few sample predictions at interesting spots.
	fmt.Printf("%-28s %10s %10s %10s %10s\n", "query (x, y, area)", "predCPU", "actCPU", "predIO", "actIO")
	for _, p := range [][]float64{
		{200, 200, 100},
		{500, 500, 2500},
		{900, 100, 40000},
	} {
		predCPU, predIO, _, _ := dual.Estimate(p...)
		cpu, io, err := win.Execute(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%5.0f, %5.0f, %7.0f)      %10.0f %10.0f %10.0f %10.0f\n",
			p[0], p[1], p[2], predCPU, cpu, predIO, io)
	}

	cpuModel := dual.CPU.Model().(*core.MLQ)
	c := cpuModel.Costs()
	fmt.Printf("\nmodel overhead: APC=%v AUC=%v over %d predictions (memory %d B)\n",
		c.APC(), c.AUC(), c.Predictions, cpuModel.MemoryUsed())
	if math.IsInf(cpuNAE.Value(), 1) {
		log.Fatal("CPU model failed to learn")
	}
}
