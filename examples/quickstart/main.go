// Quickstart: build a memory-limited quadtree cost model, feed it UDF
// execution feedback, make predictions, and persist it — the minimal tour
// of the library's public API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"mlq/internal/core"
	"mlq/internal/geom"
	"mlq/internal/quadtree"
)

func main() {
	// A UDF with two model variables, each ranging over [0, 100).
	// The model is allowed 1.8 KB of memory — the paper's budget.
	model, err := core.NewMLQ(quadtree.Config{
		Region:      mustRect(geom.Point{0, 0}, geom.Point{100, 100}),
		Strategy:    quadtree.Lazy, // MLQ-L; quadtree.Eager gives MLQ-E
		MemoryLimit: 1843,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the query feedback loop: each UDF execution reports its
	// actual cost, here cost(x, y) = x*y/10 + 5.
	cost := func(x, y float64) float64 { return x*y/10 + 5 }
	for i := 0; i < 20000; i++ {
		x, y := float64(i%100), float64((i*37)%100)
		if err := model.Observe(geom.Point{x, y}, cost(x, y)); err != nil {
			log.Fatal(err)
		}
	}

	// Predict at a few points and compare with the truth.
	fmt.Println("point          predicted    actual")
	for _, p := range []geom.Point{{10, 10}, {50, 50}, {90, 90}} {
		pred, ok := model.Predict(p)
		if !ok {
			log.Fatal("model has no data")
		}
		fmt.Printf("%-12v   %8.1f   %8.1f\n", p, pred, cost(p[0], p[1]))
	}

	// The model stayed within its memory budget throughout.
	st := model.Tree().Stats()
	fmt.Printf("\nmemory: %d bytes (%d nodes, %d compressions over %d inserts)\n",
		st.MemoryBytes, st.Nodes, st.Compressions, st.Inserts)
	if st.MemoryBytes > 1843 {
		log.Fatal("memory limit violated")
	}

	// Persist and reload: predictions survive byte-for-byte.
	var buf bytes.Buffer
	size, err := model.WriteTo(&buf)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := core.ReadMLQ(&buf)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := model.Predict(geom.Point{42, 42})
	b, _ := reloaded.Predict(geom.Point{42, 42})
	if math.Abs(a-b) > 1e-12 {
		log.Fatalf("reloaded model diverged: %g vs %g", a, b)
	}
	fmt.Printf("serialized to %d bytes; reloaded model agrees (%.1f)\n", size, b)
}

// mustRect builds a model region from the example's constant bounds,
// aborting the demo on the (impossible) malformed case.
func mustRect(lo, hi geom.Point) geom.Rect {
	r, err := geom.NewRect(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
