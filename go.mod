module mlq

go 1.22
